"""Property-based consensus invariants.

The deep guarantees the paper's comparison rests on: fork choice is a
pure function of the block *set* (not arrival order, beyond tie-breaks),
value is conserved through any reorg sequence, and replicas that saw the
same blocks agree.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import KeyPair
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import assemble_block, build_genesis_block
from repro.blockchain.chain import ChainStore
from repro.blockchain.transaction import make_coinbase


def build_block_tree(seed, depth=6, fork_probability=0.45):
    """A random tree of blocks over a shared genesis.

    Returns (genesis, blocks) with blocks in a valid parent-first order.
    """
    rng = random.Random(seed)
    key = KeyPair.from_seed(bytes([seed % 250 + 1]) * 32)
    genesis = build_genesis_block(key.address, 1000)
    frontier = [genesis]
    blocks = []
    nonce = 0
    for level in range(depth):
        next_frontier = []
        for parent in frontier:
            children = 2 if rng.random() < fork_probability else 1
            for _ in range(children):
                nonce += 1
                block = assemble_block(
                    parent.header,
                    [make_coinbase(key.address, 1, nonce=nonce)],
                    float(level + 1),
                    MAX_TARGET,
                )
                blocks.append(block)
                next_frontier.append(block)
        # Bound the tree's width.
        frontier = next_frontier[:4]
    return genesis, blocks


class TestArrivalOrderIndependence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000), shuffle=st.randoms())
    def test_same_height_any_order(self, seed, shuffle):
        """Property: whatever order blocks arrive in (parents eventually
        before children via the orphan pool), the final main-chain
        *height* is the depth of the tree — fork choice found the longest
        branch."""
        genesis, blocks = build_block_tree(seed)
        expected_height = max(b.height for b in blocks)

        arrival = list(blocks)
        shuffle.shuffle(arrival)
        store = ChainStore(genesis)
        for block in arrival:
            store.add_block(block)
        assert store.height == expected_height
        assert store.orphan_pool_size() == 0
        assert len(store) == len(blocks) + 1

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_parent_first_order_is_canonical(self, seed):
        """Property: with equal-work blocks, delivering parent-first gives
        a main chain whose every prefix is heaviest-or-first-seen; all
        chains reported by ``main_chain()`` are actually linked."""
        genesis, blocks = build_block_tree(seed)
        store = ChainStore(genesis)
        for block in blocks:
            store.add_block(block)
        chain = store.main_chain()
        for parent, child in zip(chain, chain[1:]):
            assert child.parent_id == parent.block_id
            assert child.height == parent.height + 1

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
    def test_two_replicas_same_blocks_same_depth_agreement(self, seed, data):
        """Property: two replicas fed the same blocks in different orders
        agree on every block below the deepest fork point (their heads
        may differ only within the unresolved tie at the tip)."""
        genesis, blocks = build_block_tree(seed)
        order_a = data.draw(st.permutations(blocks))
        order_b = data.draw(st.permutations(blocks))
        replica_a, replica_b = ChainStore(genesis), ChainStore(genesis)
        for block in order_a:
            replica_a.add_block(block)
        for block in order_b:
            replica_b.add_block(block)
        assert replica_a.height == replica_b.height
        # Agreement holds wherever a height has a unique heaviest block;
        # equal-work ties at the same height may legitimately differ
        # (first-seen rule).  Verify the *work* of the chosen chains ties.
        work_a = replica_a.cumulative_work(replica_a.head.block_id)
        work_b = replica_b.cumulative_work(replica_b.head.block_id)
        assert work_a == pytest.approx(work_b)


class TestLatticeProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9_999),
        ops=st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=12),
    )
    def test_rollback_is_inverse_of_process(self, seed, ops):
        """Property: processing then rolling back any suffix of sends
        restores balances exactly (the election-loser path)."""
        from repro.dag.blocks import make_send
        from repro.dag.lattice import Lattice
        from repro.dag.params import NanoParams

        rng = random.Random(seed)
        lattice = Lattice(NanoParams(work_difficulty=1))
        genesis_key = KeyPair.generate(rng)
        lattice.create_genesis(genesis_key, 10**9)
        recipient = KeyPair.generate(rng)

        sends = []
        for amount in ops:
            send = make_send(
                genesis_key,
                lattice.chain(genesis_key.address).head,
                recipient.address,
                amount,
                work_difficulty=1,
            )
            lattice.process(send)
            sends.append(send)
        # Roll back from a random cut point.
        cut = rng.randrange(len(sends))
        lattice.rollback(sends[cut].block_hash)
        expected_balance = 10**9 - sum(ops[:cut])
        assert lattice.balance(genesis_key.address) == expected_balance
        assert lattice.total_supply() == 10**9
        assert lattice.pending_count() == cut
