"""Tests for repro.confirmation.orphan and dag_confirmation."""

import pytest

from repro.confirmation.dag_confirmation import (
    blockchain_vs_dag_latency,
    expected_confirmation_latency,
    is_confirmed,
    vote_confidence,
)
from repro.confirmation.orphan import (
    expected_orphan_rate,
    orphan_rate_curve,
    propagation_delay_for_block,
)


class TestOrphanRate:
    def test_zero_delay_no_orphans(self):
        assert expected_orphan_rate(0.0, 600.0) == 0.0

    def test_rate_increases_with_delay(self):
        assert expected_orphan_rate(10, 600) < expected_orphan_rate(60, 600)

    def test_rate_decreases_with_interval(self):
        """Why Bitcoin tolerates 10-minute blocks: same delay, longer
        interval, fewer soft forks."""
        assert expected_orphan_rate(10, 600) < expected_orphan_rate(10, 15)

    def test_known_value(self):
        import math

        assert expected_orphan_rate(600, 600) == pytest.approx(1 - math.exp(-1))

    def test_curve_shape(self):
        curve = orphan_rate_curve(10.0, [15.0, 60.0, 600.0])
        rates = [rate for _, rate in curve]
        assert rates[0] > rates[1] > rates[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_orphan_rate(-1, 600)
        with pytest.raises(ValueError):
            expected_orphan_rate(1, 0)


class TestPropagationDelay:
    def test_bigger_blocks_slower(self):
        small = propagation_delay_for_block(1_000_000, 50e6, 0.1)
        big = propagation_delay_for_block(8_000_000, 50e6, 0.1)
        assert big > small

    def test_hop_scaling(self):
        one = propagation_delay_for_block(1_000_000, 50e6, 0.1, hops=1)
        three = propagation_delay_for_block(1_000_000, 50e6, 0.1, hops=3)
        assert three == pytest.approx(3 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            propagation_delay_for_block(-1, 1, 0.1)


class TestVoteConfidence:
    def test_fraction(self):
        assert vote_confidence(60, 100) == 0.6

    def test_capped_at_one(self):
        assert vote_confidence(150, 100) == 1.0

    def test_is_confirmed_threshold(self):
        assert is_confirmed(51, 100, 0.5)
        assert not is_confirmed(50, 100, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            vote_confidence(1, 0)
        with pytest.raises(ValueError):
            vote_confidence(-1, 10)


class TestLatencyModels:
    def test_quorum_reachable_in_one_round(self):
        latency = expected_confirmation_latency(0.4, [50, 30, 20], 0.5)
        assert latency == 0.4

    def test_quorum_unreachable(self):
        # 60% of weight offline-equivalent: quorum 0.5 of *total* passed in
        # as distribution can't be crossed by the 0.4 share present.
        latency = expected_confirmation_latency(0.4, [40], 1.0)
        assert latency == float("inf")

    def test_headline_comparison(self):
        """E5: Bitcoin 6 x 600s = 3600s vs one vote round."""
        blockchain, dag = blockchain_vs_dag_latency(600.0, 6, 0.5)
        assert blockchain == 3600.0
        assert dag == 0.5
        assert blockchain / dag > 1000

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            expected_confirmation_latency(0.1, [], 0.5)
