"""Integration tests for repro.dag.node over the simulated network."""

import pytest

from repro.common.errors import ValidationError
from repro.crypto.keys import KeyPair
from repro.net.link import LinkParams
from repro.dag.blocks import make_send
from repro.dag.bootstrap import build_nano_testbed, fund_accounts
from repro.dag.node import NanoNode
from repro.dag.params import NanoParams


LINK = LinkParams(latency_s=0.05, jitter_s=0.02)


@pytest.fixture
def testbed():
    tb = build_nano_testbed(
        node_count=6, representative_count=3, seed=11, link_params=LINK
    )
    return tb


@pytest.fixture
def funded(testbed):
    users = fund_accounts(testbed, 4, 100_000, settle_time=2.0)
    testbed.simulator.run(until=testbed.simulator.now + 5)
    return testbed, users


class TestReplication:
    def test_transfer_converges_on_all_replicas(self, funded):
        tb, users = funded
        u0, u1 = users[0], users[1]
        tb.node_for(u0.address).send_payment(u0.address, u1.address, 4_000)
        tb.simulator.run(until=tb.simulator.now + 10)
        assert {n.balance(u1.address) for n in tb.nodes} == {104_000}
        assert {n.balance(u0.address) for n in tb.nodes} == {96_000}
        assert len({n.lattice.block_count() for n in tb.nodes}) == 1

    def test_user_orders_own_transactions(self, funded):
        """Section VI-B: account owner orders its chain — rapid back-to-
        back sends chain correctly."""
        tb, users = funded
        u0, u1 = users[0], users[1]
        wallet = tb.node_for(u0.address)
        for amount in (100, 200, 300):
            wallet.send_payment(u0.address, u1.address, amount)
        tb.simulator.run(until=tb.simulator.now + 10)
        assert {n.balance(u1.address) for n in tb.nodes} == {100_600}
        chain = wallet.lattice.chain(u0.address)
        assert chain.height == 4  # open + 3 sends

    def test_send_to_unopened_account_creates_open(self, funded, rng):
        tb, users = funded
        newcomer = KeyPair.generate(rng)
        tb.nodes[2].add_account(newcomer)
        tb.wallets[newcomer.address] = tb.nodes[2]
        u0 = users[0]
        tb.node_for(u0.address).send_payment(u0.address, newcomer.address, 500)
        tb.simulator.run(until=tb.simulator.now + 10)
        assert {n.balance(newcomer.address) for n in tb.nodes} == {500}

    def test_offline_receiver_leaves_send_pending(self, funded):
        """Section II-B: "a node has to be online in order to receive"."""
        tb, users = funded
        u0, u1 = users[0], users[1]
        receiver_node = tb.node_for(u1.address)
        receiver_node.set_online(False)
        tb.node_for(u0.address).send_payment(u0.address, u1.address, 999)
        tb.simulator.run(until=tb.simulator.now + 10)
        online_pending = [
            n.lattice.pending_count() for n in tb.nodes if n is not receiver_node
        ]
        assert all(count == 1 for count in online_pending)
        # Receiver comes back online, bootstraps the missed blocks, settles.
        receiver_node.set_online(True)
        adopted = receiver_node.bootstrap_from(tb.nodes[0])
        assert adopted >= 1
        receiver_node.receive_pending(u1.address)
        tb.simulator.run(until=tb.simulator.now + 10)
        live_balances = {
            n.balance(u1.address) for n in tb.nodes if n is not receiver_node
        }
        assert live_balances == {100_999}


class TestStateSync:
    def test_join_from_pruned_peer(self, funded):
        """Checkpoint join: a pruned peer only has chain heads, yet a
        fresh replica reaches the same balances and supply from them."""
        from repro.storage.dag_pruning import prune_lattice

        tb, users = funded
        u0, u1 = users[0], users[1]
        tb.node_for(u0.address).send_payment(u0.address, u1.address, 4_000)
        tb.simulator.run(until=tb.simulator.now + 10)
        peer = tb.nodes[0]
        prune_lattice(peer.lattice)
        joiner = NanoNode("joiner", peer.params)
        chains = [c for c in peer.lattice.chains() if c.blocks]
        installed = joiner.state_sync_from(peer)
        assert installed == len(chains)
        assert joiner.balance(u1.address) == peer.balance(u1.address)
        assert joiner.lattice.total_supply() == peer.lattice.total_supply()
        # One head per account was enough — no history replay.
        assert joiner.lattice.block_count() == len(chains)
        for node in (joiner, peer):
            assert node.transport.counters.state_syncs == 1
            assert node.transport.counters.state_sync_bytes > 0

    def test_pending_survives_checkpoint_join(self, funded):
        tb, users = funded
        u0, u1 = users[0], users[1]
        receiver = tb.node_for(u1.address)
        receiver.set_online(False)
        tb.node_for(u0.address).send_payment(u0.address, u1.address, 999)
        tb.simulator.run(until=tb.simulator.now + 10)
        peer = next(n for n in tb.nodes if n is not receiver)
        assert peer.lattice.pending_count() == 1
        joiner = NanoNode("joiner", peer.params)
        joiner.state_sync_from(peer)
        assert joiner.lattice.pending_count() == 1


class TestConfirmation:
    def test_votes_confirm_and_cement(self, funded):
        tb, users = funded
        u0, u1 = users[0], users[1]
        block = tb.node_for(u0.address).send_payment(u0.address, u1.address, 10)
        tb.simulator.run(until=tb.simulator.now + 10)
        for node in tb.nodes:
            assert node.is_confirmed(block.block_hash)
            assert node.confirmation_confidence(block.block_hash) > 0.5
        assert tb.nodes[0].lattice.is_cemented(block.block_hash)

    def test_confirmation_latency_is_subsecond_here(self, funded):
        """DAG confirmation = vote propagation, not block intervals."""
        tb, users = funded
        u0, u1 = users[0], users[1]
        start = tb.simulator.now
        block = tb.node_for(u0.address).send_payment(u0.address, u1.address, 10)
        tb.simulator.run(until=start + 10)
        confirmed_at = tb.nodes[0].confirmation_times[block.block_hash]
        assert confirmed_at - start < 1.0

    def test_no_voting_overhead_without_reps(self):
        """A rep-less node relays but never votes (Section III-B)."""
        tb = build_nano_testbed(
            node_count=4, representative_count=2, seed=3, link_params=LINK
        )
        non_rep = tb.nodes[3]
        users = fund_accounts(tb, 2, 1_000, settle_time=2.0)
        tb.simulator.run(until=tb.simulator.now + 5)
        assert non_rep.stats.votes_cast == 0
        assert not non_rep.is_representative


class TestDoubleSpendResolution:
    def test_conflicting_sends_resolve_to_one_winner(self, funded):
        """Section III-B: representatives resolve the fork; exactly one
        of two conflicting sends survives on every replica."""
        tb, users = funded
        u0, u1, u2 = users[0], users[1], users[2]
        wallet = tb.node_for(u0.address)
        head = wallet.lattice.chain(u0.address).head
        honest = wallet.send_payment(u0.address, u1.address, 50_000)
        # The attacker signs a conflicting send from the same head and
        # injects it at a distant node.
        u0_key = wallet.local_accounts[u0.address]
        conflicting = make_send(
            u0_key, head, u2.address, 50_000, work_difficulty=1
        )
        far_node = tb.nodes[-1]
        far_node.deliver(
            "attacker",
            __import__("repro.net.message", fromlist=["Message"]).Message(
                kind="nano_block",
                payload=conflicting,
                size_bytes=conflicting.size_bytes,
                dedup_key=conflicting.block_hash,
            ),
        )
        tb.simulator.run(until=tb.simulator.now + 15)
        # All replicas agree on a single successor of `head`.
        successors = set()
        for node in tb.nodes:
            chain = node.lattice.chain(u0.address)
            for i, blk in enumerate(chain.blocks):
                if blk.block_hash == head.block_hash and i + 1 < len(chain.blocks):
                    successors.add(chain.blocks[i + 1].block_hash)
        assert len(successors) == 1
        assert sum(n.stats.forks_seen for n in tb.nodes) >= 1

    def test_total_supply_preserved_after_conflict(self, funded):
        tb, users = funded
        supply_before = tb.nodes[0].lattice.total_supply()
        self_test = TestDoubleSpendResolution()
        # (reuse the scenario above by sending conflicting payments)
        u0, u1, u2 = users[0], users[1], users[2]
        wallet = tb.node_for(u0.address)
        head = wallet.lattice.chain(u0.address).head
        wallet.send_payment(u0.address, u1.address, 1_000)
        u0_key = wallet.local_accounts[u0.address]
        conflicting = make_send(u0_key, head, u2.address, 1_000, work_difficulty=1)
        from repro.net.message import Message

        tb.nodes[-1].deliver(
            "attacker",
            Message(
                kind="nano_block",
                payload=conflicting,
                size_bytes=conflicting.size_bytes,
                dedup_key=conflicting.block_hash,
            ),
        )
        tb.simulator.run(until=tb.simulator.now + 15)
        for node in tb.nodes:
            assert node.lattice.total_supply() == supply_before


class TestSpamThrottle:
    def test_work_required_for_blocks(self, rng):
        """Section III-B: blocks without valid anti-spam work are dropped."""
        params = NanoParams(work_difficulty=2**14)
        tb = build_nano_testbed(
            node_count=3, representative_count=2, seed=5,
            params=params, link_params=LINK,
        )
        cheap = make_send(
            tb.genesis_key,
            tb.genesis_block,
            KeyPair.generate(rng).address,
            10,
            work_difficulty=1,  # far below required difficulty
        )
        with pytest.raises(ValidationError):
            tb.nodes[0]._ingest(cheap)


class TestOfflineRepublish:
    def test_block_created_offline_republishes_on_reconnect(self, funded):
        """A send issued while the wallet node is offline applies locally
        but broadcast() is a silent no-op — without a republish on
        reconnect the rest of the network can never learn the block and
        the account's heads diverge permanently (found by `repro fuzz`,
        adversarial profile)."""
        tb, users = funded
        u0, u1 = users[0], users[1]
        wallet = tb.node_for(u0.address)
        wallet.set_online(False)
        wallet.send_payment(u0.address, u1.address, 2_500)
        tb.simulator.run(until=tb.simulator.now + 10)
        others = [n for n in tb.nodes if n is not wallet]
        assert {n.balance(u0.address) for n in others} == {100_000}
        wallet.set_online(True)
        tb.simulator.run(until=tb.simulator.now + 10)
        assert {n.balance(u0.address) for n in tb.nodes} == {97_500}


class TestElectionAdoptionRetriesUnchecked:
    def test_settle_election_drains_parked_dependents(self, funded):
        """A receive gossiped while this replica still held the losing
        fork branch parks in the unchecked buffer keyed on the winning
        send.  Settling the election must route the winner through the
        normal intake path so the parked receive is retried — adopting
        via lattice.process directly left it parked forever (found by
        `repro fuzz`, conflict profile)."""
        from repro.dag.blocks import make_receive

        tb, users = funded
        u0, u1, u2 = users[0], users[1], users[2]
        wallet = tb.node_for(u0.address)
        u0_key = wallet.local_accounts[u0.address]
        u1_key = tb.node_for(u1.address).local_accounts[u1.address]
        head = wallet.lattice.chain(u0.address).head
        winner = make_send(u0_key, head, u1.address, 500, work_difficulty=1)
        loser = make_send(u0_key, head, u2.address, 500, work_difficulty=1)

        replica = next(n for n in tb.nodes if u0.address not in n.local_accounts)
        replica.set_online(False)  # isolate: drive its ledger directly
        replica._ingest(loser)
        receive = make_receive(
            u1_key, replica.lattice.chain(u1.address).head,
            winner.block_hash, 500, work_difficulty=1,
        )
        replica._ingest(receive)  # source missing -> parked
        assert receive.block_hash not in replica.lattice

        replica._conflict_buffer[winner.block_hash] = winner
        replica._settle_election(u0.address, head.block_hash, winner.block_hash)
        assert winner.block_hash in replica.lattice
        assert receive.block_hash in replica.lattice
        assert replica.balance(u1.address) == 100_500
