"""Tests for repro.metrics.tables.render_series."""

import pytest

from repro.metrics.tables import render_series


class TestRenderSeries:
    def test_shape(self):
        chart = render_series([1, 2, 3, 4], width=10, height=4)
        lines = chart.splitlines()
        assert len(lines) == 5  # header + 4 rows
        assert all(len(line) == 10 for line in lines[1:])

    def test_monotone_series_fills_monotonically(self):
        chart = render_series(list(range(20)), width=20, height=4)
        bottom = chart.splitlines()[-1]
        top = chart.splitlines()[1]
        assert bottom.count("█") >= top.count("█")

    def test_constant_series_renders(self):
        chart = render_series([5, 5, 5], width=6, height=3)
        assert "█" in chart

    def test_label_and_range_in_header(self):
        chart = render_series([0.0, 10.0], width=4, height=2, label="tps")
        header = chart.splitlines()[0]
        assert "tps" in header and "10" in header

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series([])

    def test_tiny_dimensions_rejected(self):
        with pytest.raises(ValueError):
            render_series([1, 2], width=1, height=5)
