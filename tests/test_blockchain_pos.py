"""Tests for repro.blockchain.pos (Section III-A2 + Casper finality)."""

import random

import pytest

from repro.common.errors import ValidationError
from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.blockchain.pos import (
    Checkpoint,
    FinalityGadget,
    FinalityVote,
    ValidatorSet,
    energy_ratio,
)


@pytest.fixture
def validators(keypairs):
    vs = ValidatorSet()
    for i, kp in enumerate(keypairs[:4]):
        vs.deposit(kp.address, (i + 1) * 100)  # stakes 100..400
    return vs, [kp.address for kp in keypairs[:4]]


def cp(n, epoch):
    return Checkpoint(block_id=Hash(bytes([n]) * 32), epoch=epoch)


class TestStaking:
    def test_deposit_and_total(self, validators):
        vs, addrs = validators
        assert vs.total_stake() == 1000
        assert vs.stake_of(addrs[3]) == 400

    def test_incremental_deposit(self, validators):
        vs, addrs = validators
        vs.deposit(addrs[0], 50)
        assert vs.stake_of(addrs[0]) == 150

    def test_withdraw(self, validators):
        vs, addrs = validators
        vs.withdraw(addrs[0], 60)
        assert vs.stake_of(addrs[0]) == 40

    def test_overdraw_rejected(self, validators):
        vs, addrs = validators
        with pytest.raises(ValidationError):
            vs.withdraw(addrs[0], 101)

    def test_nonpositive_deposit_rejected(self, validators):
        vs, addrs = validators
        with pytest.raises(ValidationError):
            vs.deposit(addrs[0], 0)

    def test_slash_burns_entire_stake(self, validators):
        vs, addrs = validators
        burned = vs.slash(addrs[3])
        assert burned == 400
        assert vs.stake_of(addrs[3]) == 0
        assert vs.burned_stake == 400
        assert vs.total_stake() == 600

    def test_slashed_validator_cannot_rejoin(self, validators):
        vs, addrs = validators
        vs.slash(addrs[0])
        with pytest.raises(ValidationError):
            vs.deposit(addrs[0], 100)


class TestLottery:
    def test_selection_tracks_stake(self, validators):
        """The E2 claim: proposer frequency ∝ stake."""
        vs, addrs = validators
        counts = vs.selection_distribution(random.Random(0), rounds=20_000)
        total = sum(counts.values())
        for i, addr in enumerate(addrs):
            expected = (i + 1) * 100 / 1000
            assert counts.get(addr, 0) / total == pytest.approx(expected, abs=0.02)

    def test_slashed_never_selected(self, validators):
        vs, addrs = validators
        vs.slash(addrs[3])
        counts = vs.selection_distribution(random.Random(1), rounds=2_000)
        assert addrs[3] not in counts

    def test_empty_set_rejected(self):
        with pytest.raises(ValidationError):
            ValidatorSet().select_proposer(random.Random(0))


class TestFinalityGadget:
    def make_gadget(self, validators):
        vs, addrs = validators
        return FinalityGadget(vs, cp(0, 0)), vs, addrs

    def test_genesis_justified_and_finalized(self, validators):
        gadget, _, _ = self.make_gadget(validators)
        assert gadget.is_justified(cp(0, 0))
        assert gadget.is_finalized(cp(0, 0))

    def test_two_thirds_justifies(self, validators):
        gadget, vs, addrs = self.make_gadget(validators)
        target = cp(1, 1)
        # addrs[2]+addrs[3] = 700/1000 >= 2/3
        gadget.cast_vote(FinalityVote(addrs[3], cp(0, 0), target))
        assert not gadget.is_justified(target)
        gadget.cast_vote(FinalityVote(addrs[2], cp(0, 0), target))
        assert gadget.is_justified(target)

    def test_finalization_of_source(self, validators):
        gadget, vs, addrs = self.make_gadget(validators)
        target = cp(1, 1)
        for addr in addrs:
            gadget.cast_vote(FinalityVote(addr, cp(0, 0), target))
        # cp(0,0) source finalized by its direct-child justification.
        assert gadget.is_finalized(cp(0, 0))
        assert gadget.last_finalized == cp(0, 0)

    def test_minority_cannot_justify(self, validators):
        gadget, vs, addrs = self.make_gadget(validators)
        target = cp(1, 1)
        gadget.cast_vote(FinalityVote(addrs[0], cp(0, 0), target))
        gadget.cast_vote(FinalityVote(addrs[1], cp(0, 0), target))
        assert not gadget.is_justified(target)  # 300/1000

    def test_double_vote_slashed(self, validators):
        gadget, vs, addrs = self.make_gadget(validators)
        gadget.cast_vote(FinalityVote(addrs[3], cp(0, 0), cp(1, 1)))
        slashed = gadget.cast_vote(FinalityVote(addrs[3], cp(0, 0), cp(2, 1)))
        assert slashed == addrs[3]
        assert vs.stake_of(addrs[3]) == 0
        assert addrs[3] in gadget.slashings

    def test_surround_vote_slashed(self, validators):
        gadget, vs, addrs = self.make_gadget(validators)
        # First a (1 -> 2) link, then a surrounding (0 -> 3) link.
        for addr in addrs:
            gadget.cast_vote(FinalityVote(addr, cp(0, 0), cp(1, 1)))
        gadget.cast_vote(FinalityVote(addrs[2], cp(1, 1), cp(2, 2)))
        slashed = gadget.cast_vote(FinalityVote(addrs[2], cp(0, 0), cp(3, 3)))
        assert slashed == addrs[2]

    def test_unjustified_source_does_not_count(self, validators):
        gadget, vs, addrs = self.make_gadget(validators)
        bogus_source = cp(9, 1)
        for addr in addrs:
            gadget.cast_vote(FinalityVote(addr, bogus_source, cp(5, 2)))
        assert not gadget.is_justified(cp(5, 2))

    def test_vote_requires_stake(self, validators, rng):
        gadget, vs, addrs = self.make_gadget(validators)
        outsider = KeyPair.generate(rng).address
        with pytest.raises(ValidationError):
            gadget.cast_vote(FinalityVote(outsider, cp(0, 0), cp(1, 1)))

    def test_vote_epoch_ordering_enforced(self, validators):
        _, _, addrs = self.make_gadget(validators)
        with pytest.raises(ValidationError):
            FinalityVote(addrs[0], cp(1, 1), cp(2, 1))


class TestEnergy:
    def test_pow_energy_dwarfs_pos(self):
        """Section III-A2: PoS "consumes far less electricity"."""
        assert energy_ratio() > 10**6
