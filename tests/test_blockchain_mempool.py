"""Tests for repro.blockchain.mempool."""

import pytest

from repro.crypto.keys import KeyPair
from repro.blockchain.mempool import Mempool, MempoolLimits
from repro.blockchain.transaction import (
    build_transaction,
    make_coinbase,
    sign_account_transaction,
)


@pytest.fixture
def payments(rng):
    """Three UTXO payments with fees 1, 5, 10 (by construction)."""
    alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
    txs = []
    for i, fee in enumerate((1, 5, 10)):
        funding = make_coinbase(alice.address, 100, nonce=i)
        txs.append(
            (build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 50, fee=fee), fee)
        )
    return txs


class TestAdmission:
    def test_add_and_contains(self, payments):
        pool = Mempool()
        tx, fee = payments[0]
        assert pool.add(tx, fee=fee)
        assert tx.txid in pool
        assert len(pool) == 1

    def test_duplicate_rejected(self, payments):
        pool = Mempool()
        tx, fee = payments[0]
        pool.add(tx, fee=fee)
        assert not pool.add(tx, fee=fee)

    def test_account_tx_fee_derived(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        tx = sign_account_transaction(alice, 0, bob.address, 5, gas_price=2)
        pool = Mempool()
        pool.add(tx)
        assert pool._fees[tx.txid] == 21_000 * 2  # intrinsic gas * price

    def test_remove(self, payments):
        pool = Mempool()
        tx, fee = payments[0]
        pool.add(tx, fee=fee)
        assert pool.remove(tx.txid) is tx
        assert tx.txid not in pool


class TestSelection:
    def test_fee_rate_ordering(self, payments):
        pool = Mempool()
        for tx, fee in payments:
            pool.add(tx, fee=fee)
        selected = pool.select_by_size(10**6)
        fees = [pool._fees[tx.txid] for tx in selected]
        assert fees == sorted(fees, reverse=True)

    def test_size_cap_respected(self, payments):
        pool = Mempool()
        for tx, fee in payments:
            pool.add(tx, fee=fee)
        one_tx_size = payments[0][0].size_bytes
        selected = pool.select_by_size(one_tx_size)
        assert len(selected) == 1

    def test_gas_cap_respected(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        pool = Mempool()
        for n in range(5):
            pool.add(sign_account_transaction(alice, n, bob.address, 1))
        selected = pool.select_by_gas(21_000 * 2)
        assert len(selected) == 2

    def test_gas_selection_prefers_high_price(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        pool = Mempool()
        cheap = sign_account_transaction(alice, 0, bob.address, 1, gas_price=1)
        dear = sign_account_transaction(alice, 1, bob.address, 1, gas_price=9)
        pool.add(cheap)
        pool.add(dear)
        assert pool.select_by_gas(21_000)[0].txid == dear.txid


class TestLifecycle:
    def test_remove_included(self, payments):
        pool = Mempool()
        for tx, fee in payments:
            pool.add(tx, fee=fee)
        removed = pool.remove_included([payments[0][0], payments[1][0]])
        assert removed == 2 and len(pool) == 1

    def test_readmit_skips_coinbase(self, payments, rng):
        pool = Mempool()
        cb = make_coinbase(KeyPair.generate(rng).address, 50)
        readmitted = pool.readmit([cb, payments[0][0]])
        assert readmitted == 1
        assert cb.txid not in pool

    def test_evict_keeps_best(self, payments):
        pool = Mempool()
        for tx, fee in payments:
            pool.add(tx, fee=fee)
        dropped = pool.evict(keep=1)
        assert dropped == 2
        # Survivor is the fee-10 transaction.
        survivor = pool.pending()[0]
        assert pool._fees[survivor.txid] == 10

    def test_size_bytes(self, payments):
        pool = Mempool()
        tx, fee = payments[0]
        pool.add(tx, fee=fee)
        assert pool.size_bytes() == tx.size_bytes


class TestFeeMarket:
    def test_readmit_preserves_fee(self, payments):
        pool = Mempool()
        tx, fee = payments[2]
        pool.add(tx, fee=fee)
        pool.remove(tx.txid)
        assert pool.readmit([tx]) == 1
        assert pool._fees[tx.txid] == fee

    def test_min_fee_rate_floor(self, payments):
        pool = Mempool(limits=MempoolLimits(min_fee_rate=1.0))
        cheap, _ = payments[0]
        assert not pool.add(cheap, fee=1)
        assert pool.total_rejected_fee == 1
        dear, _ = payments[2]
        assert pool.add(dear, fee=dear.size_bytes * 2)

    def test_count_cap_evicts_cheapest(self, payments):
        pool = Mempool(limits=MempoolLimits(max_count=2))
        for tx, fee in payments:  # fees 1, 5, 10 arrive in that order
            assert pool.add(tx, fee=fee)
        assert len(pool) == 2
        assert payments[0][0].txid not in pool
        assert pool.total_dropped == 1

    def test_full_pool_rejects_underbidder(self, payments):
        pool = Mempool(limits=MempoolLimits(max_count=2))
        pool.add(payments[1][0], fee=5)
        pool.add(payments[2][0], fee=10)
        assert not pool.add(payments[0][0], fee=1)
        assert pool.total_rejected_full == 1
        assert len(pool) == 2

    def test_byte_cap_enforced(self, payments):
        one_tx = payments[0][0].size_bytes
        pool = Mempool(limits=MempoolLimits(max_bytes=one_tx))
        pool.add(payments[0][0], fee=1)
        assert pool.add(payments[2][0], fee=10)  # outbids, evicts
        assert len(pool) == 1
        assert pool.size_bytes() <= one_tx

    def test_byte_total_tracks_lifecycle(self, payments):
        pool = Mempool()
        for tx, fee in payments:
            pool.add(tx, fee=fee)
        assert pool.size_bytes() == sum(tx.size_bytes for tx, _ in payments)
        dropped_before = pool.total_dropped
        pool.evict(keep=1)
        assert pool.total_dropped == dropped_before + 2
        survivor = pool.pending()[0]
        assert pool.size_bytes() == survivor.size_bytes
        pool.remove(survivor.txid)
        assert pool.size_bytes() == 0

    def test_counters_exported(self, payments):
        pool = Mempool()
        tx, fee = payments[0]
        pool.add(tx, fee=fee)
        counters = pool.counters()
        assert counters["mempool.accepted"] == 1.0
        assert counters["mempool.backlog"] == 1.0
        assert counters["mempool.backlog_bytes"] == float(tx.size_bytes)


class TestReplaceByFee:
    def test_same_nonce_outbid_replaces(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        pool = Mempool()
        original = sign_account_transaction(alice, 0, bob.address, 5, gas_price=2)
        bump = sign_account_transaction(alice, 0, bob.address, 7, gas_price=5)
        assert pool.add(original)
        assert pool.add(bump)
        assert len(pool) == 1
        assert bump.txid in pool and original.txid not in pool
        assert pool.total_replaced == 1

    def test_same_nonce_underbid_rejected(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        pool = Mempool()
        original = sign_account_transaction(alice, 0, bob.address, 5, gas_price=3)
        equal_bid = sign_account_transaction(alice, 0, bob.address, 7, gas_price=3)
        pool.add(original)
        assert not pool.add(equal_bid)
        assert pool.total_rejected_replacement == 1
        assert original.txid in pool and len(pool) == 1

    def test_utxo_conflict_outbid_replaces(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        funding = make_coinbase(alice.address, 100)
        first = build_transaction(
            alice, [(funding.txid, 0, 100)], bob.address, 50, fee=1
        )
        second = build_transaction(
            alice, [(funding.txid, 0, 100)], bob.address, 40, fee=20
        )
        pool = Mempool()
        assert pool.add(first, fee=1)
        assert pool.add(second, fee=20)
        assert len(pool) == 1 and second.txid in pool

    def test_utxo_conflict_underbid_rejected(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        funding = make_coinbase(alice.address, 100)
        rich = build_transaction(
            alice, [(funding.txid, 0, 100)], bob.address, 40, fee=20
        )
        poor = build_transaction(
            alice, [(funding.txid, 0, 100)], bob.address, 50, fee=1
        )
        pool = Mempool()
        pool.add(rich, fee=20)
        assert not pool.add(poor, fee=1)
        assert rich.txid in pool and len(pool) == 1

    def test_replacement_factor_raises_the_bar(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        pool = Mempool(limits=MempoolLimits(replacement_factor=2.0))
        original = sign_account_transaction(alice, 0, bob.address, 5, gas_price=4)
        weak = sign_account_transaction(alice, 0, bob.address, 6, gas_price=7)
        strong = sign_account_transaction(alice, 0, bob.address, 6, gas_price=9)
        pool.add(original)
        assert not pool.add(weak)  # 7 <= 4 * 2
        assert pool.add(strong)  # 9 > 4 * 2
        assert strong.txid in pool and len(pool) == 1
