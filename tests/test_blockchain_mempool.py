"""Tests for repro.blockchain.mempool."""

import pytest

from repro.crypto.keys import KeyPair
from repro.blockchain.mempool import Mempool
from repro.blockchain.transaction import (
    build_transaction,
    make_coinbase,
    sign_account_transaction,
)


@pytest.fixture
def payments(rng):
    """Three UTXO payments with fees 1, 5, 10 (by construction)."""
    alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
    txs = []
    for i, fee in enumerate((1, 5, 10)):
        funding = make_coinbase(alice.address, 100, nonce=i)
        txs.append(
            (build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 50, fee=fee), fee)
        )
    return txs


class TestAdmission:
    def test_add_and_contains(self, payments):
        pool = Mempool()
        tx, fee = payments[0]
        assert pool.add(tx, fee=fee)
        assert tx.txid in pool
        assert len(pool) == 1

    def test_duplicate_rejected(self, payments):
        pool = Mempool()
        tx, fee = payments[0]
        pool.add(tx, fee=fee)
        assert not pool.add(tx, fee=fee)

    def test_account_tx_fee_derived(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        tx = sign_account_transaction(alice, 0, bob.address, 5, gas_price=2)
        pool = Mempool()
        pool.add(tx)
        assert pool._fees[tx.txid] == 21_000 * 2  # intrinsic gas * price

    def test_remove(self, payments):
        pool = Mempool()
        tx, fee = payments[0]
        pool.add(tx, fee=fee)
        assert pool.remove(tx.txid) is tx
        assert tx.txid not in pool


class TestSelection:
    def test_fee_rate_ordering(self, payments):
        pool = Mempool()
        for tx, fee in payments:
            pool.add(tx, fee=fee)
        selected = pool.select_by_size(10**6)
        fees = [pool._fees[tx.txid] for tx in selected]
        assert fees == sorted(fees, reverse=True)

    def test_size_cap_respected(self, payments):
        pool = Mempool()
        for tx, fee in payments:
            pool.add(tx, fee=fee)
        one_tx_size = payments[0][0].size_bytes
        selected = pool.select_by_size(one_tx_size)
        assert len(selected) == 1

    def test_gas_cap_respected(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        pool = Mempool()
        for n in range(5):
            pool.add(sign_account_transaction(alice, n, bob.address, 1))
        selected = pool.select_by_gas(21_000 * 2)
        assert len(selected) == 2

    def test_gas_selection_prefers_high_price(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        pool = Mempool()
        cheap = sign_account_transaction(alice, 0, bob.address, 1, gas_price=1)
        dear = sign_account_transaction(alice, 1, bob.address, 1, gas_price=9)
        pool.add(cheap)
        pool.add(dear)
        assert pool.select_by_gas(21_000)[0].txid == dear.txid


class TestLifecycle:
    def test_remove_included(self, payments):
        pool = Mempool()
        for tx, fee in payments:
            pool.add(tx, fee=fee)
        removed = pool.remove_included([payments[0][0], payments[1][0]])
        assert removed == 2 and len(pool) == 1

    def test_readmit_skips_coinbase(self, payments, rng):
        pool = Mempool()
        cb = make_coinbase(KeyPair.generate(rng).address, 50)
        readmitted = pool.readmit([cb, payments[0][0]])
        assert readmitted == 1
        assert cb.txid not in pool

    def test_evict_keeps_best(self, payments):
        pool = Mempool()
        for tx, fee in payments:
            pool.add(tx, fee=fee)
        dropped = pool.evict(keep=1)
        assert dropped == 2
        # Survivor is the fee-10 transaction.
        survivor = pool.pending()[0]
        assert pool._fees[survivor.txid] == 10

    def test_size_bytes(self, payments):
        pool = Mempool()
        tx, fee = payments[0]
        pool.add(tx, fee=fee)
        assert pool.size_bytes() == tx.size_bytes
