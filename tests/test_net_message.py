"""Tests for repro.net.message."""

from repro.common.types import Hash
from repro.net.message import MESSAGE_OVERHEAD_BYTES, Message


class TestMessage:
    def test_wire_size_adds_overhead(self):
        msg = Message(kind="tx", payload=None, size_bytes=100)
        assert msg.wire_size == 100 + MESSAGE_OVERHEAD_BYTES

    def test_unique_ids(self):
        a = Message(kind="x", payload=None, size_bytes=1)
        b = Message(kind="x", payload=None, size_bytes=1)
        assert a.msg_id != b.msg_id

    def test_gossip_key_uses_dedup_when_present(self):
        key = Hash(b"\x01" * 32)
        a = Message(kind="block", payload=1, size_bytes=1, dedup_key=key)
        b = Message(kind="block", payload=2, size_bytes=9, dedup_key=key)
        assert a.gossip_key() == b.gossip_key()

    def test_gossip_key_distinguishes_kinds(self):
        key = Hash(b"\x01" * 32)
        a = Message(kind="block", payload=1, size_bytes=1, dedup_key=key)
        b = Message(kind="vote", payload=1, size_bytes=1, dedup_key=key)
        assert a.gossip_key() != b.gossip_key()

    def test_gossip_key_falls_back_to_msg_id(self):
        a = Message(kind="x", payload=1, size_bytes=1)
        b = Message(kind="x", payload=1, size_bytes=1)
        assert a.gossip_key() != b.gossip_key()
