"""Tests for the mean-field aggregate gossip tier (repro.net.aggregate).

The load-bearing test here is the aggregate-vs-exact validation: the
vectorized cluster model must stay within a pinned KS tolerance of a
fully-simulated small-N flood, so model drift fails loudly instead of
silently skewing the 10^4-node scale benches.
"""

import numpy as np
import pytest

from repro.net.aggregate import (
    NESTED_AUTO_THRESHOLD,
    AggregateCluster,
    TopologyScale,
    aggregate_flood_times,
    attach_clusters,
    exact_flood_times,
    hop_layers,
    ks_statistic,
    nested_consistency_at_scale,
    sample_flood_times,
    sample_nested_flood_times,
    validate_aggregate_model,
    validate_nested_aggregate_model,
)
from repro.net.link import FAST_LINK, LinkParams
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator


def make_message(payload="x", size=100):
    return Message(kind="test", payload=payload, size_bytes=size)


class Recorder(NetworkNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def handle_message(self, sender_id, message):
        self.received.append((sender_id, message.payload))


class TestHopLayers:
    def test_covers_exactly_count(self):
        for count in (1, 5, 23, 100, 4096):
            for degree in (2, 4, 8):
                layers = hop_layers(count, degree)
                assert sum(layers) == count
                assert all(size >= 1 for size in layers)

    def test_first_layer_is_the_ingress_degree(self):
        assert hop_layers(100, 6)[0] == 6
        assert hop_layers(3, 6)[0] == 3

    def test_collision_correction_slows_the_front(self):
        # In a finite graph the frontier grows slower than the ideal
        # d*(d-1)^h tree — the correction must bite.
        layers = hop_layers(100, 4)
        ideal = [4, 12, 36, 48]
        assert layers[1] < ideal[1] or layers[2] < ideal[2]

    def test_validates_degree(self):
        with pytest.raises(ValueError):
            hop_layers(10, 1)
        assert hop_layers(0, 4) == []


class TestSampleFloodTimes:
    def test_sorted_positive_and_sized(self):
        rng = np.random.default_rng(7)
        times = sample_flood_times(500, 8, FAST_LINK, 1000, rng)
        assert len(times) == 500
        assert (times > 0).all()
        assert (np.diff(times) >= 0).all()

    def test_deterministic_for_same_seed(self):
        link = LinkParams(latency_s=0.05, jitter_s=0.03, loss_probability=0.1)
        a = sample_flood_times(200, 6, link, 500, np.random.default_rng(3))
        b = sample_flood_times(200, 6, link, 500, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_loss_extends_the_tail(self):
        clean = LinkParams(latency_s=0.05, jitter_s=0.0, loss_probability=0.0)
        lossy = LinkParams(latency_s=0.05, jitter_s=0.0, loss_probability=0.4)
        t_clean = sample_flood_times(300, 6, clean, 500,
                                     np.random.default_rng(0))
        t_lossy = sample_flood_times(300, 6, lossy, 500,
                                     np.random.default_rng(0))
        assert t_lossy.mean() > t_clean.mean()

    def test_empty(self):
        assert len(sample_flood_times(0, 8, FAST_LINK, 100,
                                      np.random.default_rng(0))) == 0


class TestKsStatistic:
    def test_identical_samples(self):
        assert ks_statistic([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_disjoint_samples(self):
        assert ks_statistic([0.0, 1.0], [10.0, 11.0]) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1.0])


class TestAggregateVsExactValidation:
    """The pinned tolerance: aggregate and exact small-N floods must
    agree on the propagation-time distribution."""

    def test_default_config_within_pinned_ks_tolerance(self):
        result = validate_aggregate_model()  # N=24, degree=4, 5 seeds
        assert result["ks"] <= 0.15, result
        # Means agree within 5% as well — KS alone would tolerate a
        # uniform shift of small samples.
        rel = abs(result["aggregate_mean"] - result["exact_mean"])
        assert rel / result["exact_mean"] <= 0.05, result

    def test_denser_interior_within_tolerance(self):
        result = validate_aggregate_model(count=32, degree=6)
        assert result["ks"] <= 0.12, result

    def test_validation_is_deterministic(self):
        assert validate_aggregate_model() == validate_aggregate_model()

    def test_exact_and_aggregate_samples_sized_consistently(self):
        link = LinkParams(latency_s=0.05, jitter_s=0.04,
                          bandwidth_bps=50_000_000.0)
        exact = exact_flood_times(16, 4, link, seed=0)
        aggregate = aggregate_flood_times(16, 4, link, seed=0)
        assert len(exact) == len(aggregate) == 15


class TestAggregateCluster:
    def build(self, size=50, tick_s=0.25, **kwargs):
        sim = Simulator(seed=1)
        net = Network(sim, coalesce=False)
        nodes = complete_topology(net, 3, Recorder, FAST_LINK)
        cluster = AggregateCluster("agg:n0", size, tick_s=tick_s,
                                   link=FAST_LINK, **kwargs)
        net.add_node(cluster)
        net.connect("n0", "agg:n0", FAST_LINK)
        return sim, net, nodes, cluster

    def test_models_each_broadcast_once(self):
        sim, net, nodes, cluster = self.build()
        nodes[1].broadcast(make_message("a"))
        nodes[2].broadcast(make_message("b"))
        sim.run()
        assert cluster.messages_modeled == 2
        assert cluster.messages_completed == 2
        assert cluster.modeled_deliveries == 2 * cluster.size
        assert len(cluster.propagation_times) == 2
        assert all(t > 0 for t in cluster.propagation_times)

    def test_tick_task_detaches_when_idle(self):
        """A permanently ticking cluster would keep sim.run() alive
        forever; the tick loop must cancel itself once all timelines
        complete (sim.run() terminating at all proves it)."""
        sim, net, nodes, cluster = self.build()
        nodes[1].broadcast(make_message("a"))
        sim.run()
        assert cluster._tick_task is None
        assert cluster.ticks > 0
        # And it restarts for a later message.
        nodes[1].broadcast(make_message("c"))
        sim.run()
        assert cluster.messages_completed == 2

    def test_infection_advances_incrementally(self):
        sim, net, nodes, cluster = self.build(size=400, tick_s=0.01)
        slow = LinkParams(latency_s=0.5, jitter_s=0.2, bandwidth_bps=1e9)
        cluster.link = slow
        message = make_message("slow")
        nodes[1].broadcast(message)
        sim.run(until=1.0)
        partial = cluster.infected(message)
        assert 0 < partial < cluster.size or cluster.messages_completed == 1
        sim.run()
        assert cluster.messages_completed == 1
        assert cluster.stats()["propagation_max_s"] > 0

    def test_seed_stable_across_runs(self):
        def fingerprint():
            sim, net, nodes, cluster = self.build(size=80)
            nodes[1].broadcast(make_message("a"))
            sim.run()
            return tuple(cluster.propagation_times)

        assert fingerprint() == fingerprint()

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            AggregateCluster("c", 0)
        with pytest.raises(ValueError):
            AggregateCluster("c", 10, tick_s=0.0)


class TestAttachClusters:
    def test_distributes_surplus_across_boundary(self):
        sim = Simulator(seed=0)
        net = Network(sim, coalesce=False)
        complete_topology(net, 4, Recorder, FAST_LINK)
        scale = TopologyScale(total_nodes=104)
        clusters = attach_clusters(net, scale)
        assert len(clusters) == 4
        assert sum(c.size for c in clusters) == 100
        assert max(c.size for c in clusters) - min(
            c.size for c in clusters) <= 1
        # Clusters are leaves: one neighbor each, the boundary node.
        for cluster in clusters:
            assert net.neighbors(cluster.node_id) == \
                [cluster.node_id.split(":", 1)[1]]

    def test_no_clusters_when_boundary_covers_total(self):
        sim = Simulator(seed=0)
        net = Network(sim, coalesce=False)
        complete_topology(net, 4, Recorder, FAST_LINK)
        assert attach_clusters(net, TopologyScale(total_nodes=4)) == []

    def test_broadcast_reaches_every_cluster_exactly_once(self):
        sim = Simulator(seed=0)
        net = Network(sim, coalesce=False)
        nodes = complete_topology(net, 4, Recorder, FAST_LINK)
        clusters = attach_clusters(net, TopologyScale(
            total_nodes=204, cluster_link=FAST_LINK))
        nodes[0].broadcast(make_message("wide"))
        sim.run()
        for cluster in clusters:
            assert cluster.messages_modeled == 1
            assert cluster.messages_completed == 1
        total = sum(c.modeled_deliveries for c in clusters)
        assert total == 200

    def test_scale_validates(self):
        with pytest.raises(ValueError):
            TopologyScale(total_nodes=0)
        with pytest.raises(ValueError):
            TopologyScale(total_nodes=10, cluster_degree=1)
        with pytest.raises(ValueError):
            TopologyScale(total_nodes=10, tick_s=0.0)


class TestNestedAggregate:
    """The cluster-of-clusters law that lifts the aggregate tier to
    10^5-10^6 nodes: gateways flood over the boundary overlay, interiors
    flood beneath each gateway, offset by the gateway's own arrival."""

    def link(self):
        return LinkParams(latency_s=0.05, jitter_s=0.04,
                          bandwidth_bps=50_000_000.0)

    def test_sampler_returns_one_delay_per_member_sorted(self):
        rng = np.random.default_rng(0)
        times = sample_nested_flood_times(
            1_000, fanout=4, degree=4, link=self.link(), wire_size=256,
            rng=rng, min_leaf=100)
        assert len(times) == 1_000
        assert np.all(np.diff(times) >= 0)
        assert np.all(times > 0)

    def test_flat_fallback_below_fanout(self):
        """fanout < 2 or tiny populations collapse to the flat law."""
        rng = np.random.default_rng(1)
        nested = sample_nested_flood_times(
            50, fanout=1, degree=4, link=self.link(), wire_size=256,
            rng=rng)
        flat = sample_flood_times(
            50, degree=4, link=self.link(), wire_size=256,
            rng=np.random.default_rng(1))
        assert np.allclose(nested, flat)

    def test_validated_against_exact_two_level_flood(self):
        """The pinned tolerance for the nested law, mirroring the flat
        tier's KS gate: a real two-level topology (gateway overlay +
        per-group interiors) vs the nested sampler."""
        result = validate_nested_aggregate_model()
        assert result["ks"] <= 0.15, result
        rel = abs(result["nested_mean"] - result["exact_mean"])
        assert rel / result["exact_mean"] <= 0.05, result

    def test_nested_consistent_with_flat_law_at_scale(self):
        """At 10^5 the nested recursion must reproduce the flat
        mean-field law it decomposes (depth composes as log(fanout) +
        log(n/fanout) = log(n))."""
        result = nested_consistency_at_scale(total=100_000)
        assert result["ks"] <= 0.15, result
        assert result["mean_err"] <= 0.05, result
        assert result["fanout"] >= 2

    def test_validation_is_deterministic(self):
        assert validate_nested_aggregate_model() == \
            validate_nested_aggregate_model()

    def test_cluster_fanout_auto_rule(self):
        scale = TopologyScale(total_nodes=10)
        assert scale.cluster_fanout(NESTED_AUTO_THRESHOLD - 1) == 0
        assert scale.cluster_fanout(NESTED_AUTO_THRESHOLD) >= 2
        assert scale.cluster_fanout(1_000_000) == 64  # clamped
        pinned = TopologyScale(total_nodes=10, nested_fanout=8)
        assert pinned.cluster_fanout(100) == 8
        flat = TopologyScale(total_nodes=10, nested_fanout=0)
        assert flat.cluster_fanout(10**6) == 0

    def test_nested_cluster_models_whole_population(self):
        sim = Simulator(seed=3)
        net = Network(sim, coalesce=False)
        nodes = complete_topology(net, 3, Recorder, FAST_LINK)
        cluster = AggregateCluster("agg:n0", 30_000, tick_s=0.25,
                                   link=FAST_LINK, fanout=6)
        net.add_node(cluster)
        net.connect("n0", "agg:n0", FAST_LINK)
        nodes[1].broadcast(make_message("deep"))
        sim.run()
        assert cluster.messages_completed == 1
        assert cluster.modeled_deliveries == 30_000
        assert cluster.stats()["propagation_max_s"] > 0

    def test_scale_validates_plane_fields(self):
        with pytest.raises(ValueError):
            TopologyScale(total_nodes=10, plane="warp")
        with pytest.raises(ValueError):
            TopologyScale(total_nodes=10, nested_fanout=-1)
        with pytest.raises(ValueError):
            TopologyScale(total_nodes=10, shards=0)
        with pytest.raises(ValueError):
            TopologyScale(total_nodes=10, jobs=0)
