"""Tests for repro.metrics.slo (sustained-service reporting)."""

import pytest

from repro.metrics.slo import (
    detect_saturation_knee,
    latency_histogram,
    load_point,
)


def _point(offered_tps, submitted, confirmed):
    return load_point(
        offered_tps, [1.0] * confirmed, submitted, duration_s=100.0
    )


class TestLoadPoint:
    def test_rates_and_percentile_ordering(self):
        latencies = [float(i) for i in range(1, 101)]
        point = load_point(2.0, latencies, submitted=200, duration_s=100.0)
        assert point.achieved_tps == 1.0
        assert 50.0 <= point.p50_s <= 51.0
        assert point.p50_s <= point.p95_s <= point.p99_s <= 100.0

    def test_empty_latencies_infinite_tail(self):
        point = load_point(1.0, [], submitted=10, duration_s=10.0)
        assert point.achieved_tps == 0.0
        assert point.p50_s == float("inf")
        assert point.p99_s == float("inf")

    def test_backpressure_fraction(self):
        point = load_point(1.0, [1.0], submitted=8, duration_s=10.0,
                           rejected=2)
        assert point.backpressure_fraction == pytest.approx(0.2)

    def test_carried_ratio_uses_actual_arrivals(self):
        # Poisson noise delivered 29 arrivals where 0.25 tps * 150 s
        # nominally promises 37.5; all confirmed still means keeping up.
        point = load_point(0.25, [1.0] * 29, submitted=29, duration_s=150.0)
        assert point.carried_ratio == pytest.approx(1.0)

    def test_as_metrics_keys(self):
        metrics = load_point(2.0, [1.0], submitted=1, duration_s=1.0
                             ).as_metrics("bc")
        assert set(metrics) == {
            "bc_2tps_achieved_tps", "bc_2tps_p50_s", "bc_2tps_p99_s",
            "bc_2tps_backpressure",
        }

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            load_point(1.0, [], submitted=0, duration_s=0.0)


class TestLatencyHistogram:
    def test_buckets_and_overflow(self):
        hist = latency_histogram([0.5, 1.5, 2.5, 10.0], [1.0, 2.0])
        assert hist == [(1.0, 1), (2.0, 1), (float("inf"), 2)]

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            latency_histogram([], [2.0, 1.0])


class TestSaturationKnee:
    def test_knee_is_last_carried_load(self):
        points = [
            _point(1.0, 100, 100),
            _point(2.0, 200, 196),
            _point(4.0, 400, 120),
        ]
        assert detect_saturation_knee(points) == 2.0

    def test_order_independent(self):
        points = [
            _point(4.0, 400, 120),
            _point(1.0, 100, 100),
            _point(2.0, 200, 196),
        ]
        assert detect_saturation_knee(points) == 2.0

    def test_no_knee_when_never_saturated(self):
        points = [_point(1.0, 100, 100), _point(2.0, 200, 200)]
        assert detect_saturation_knee(points) is None

    def test_no_knee_when_always_saturated(self):
        assert detect_saturation_knee([_point(1.0, 100, 10)]) is None
