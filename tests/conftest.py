"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.dag.lattice import Lattice
from repro.dag.params import NanoParams


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def keypair(rng: random.Random) -> KeyPair:
    return KeyPair.generate(rng)


@pytest.fixture
def keypairs(rng: random.Random):
    """Ten distinct keypairs."""
    return [KeyPair.generate(rng) for _ in range(10)]


@pytest.fixture
def fast_nano_params() -> NanoParams:
    """Nano params with trivially cheap anti-spam work, for fast tests."""
    return NanoParams(work_difficulty=1)


@pytest.fixture
def funded_lattice(fast_nano_params: NanoParams, rng: random.Random):
    """A lattice with a genesis and two funded user accounts.

    Returns (lattice, genesis_key, user_a_key, user_b_key); each user
    holds 1_000_000 raw settled on their own chain.
    """
    from repro.dag.blocks import make_open, make_send

    lattice = Lattice(fast_nano_params)
    genesis_key = KeyPair.generate(rng)
    genesis = lattice.create_genesis(genesis_key, 10**12)
    users = []
    prev = genesis
    for _ in range(2):
        user = KeyPair.generate(rng)
        send = make_send(
            genesis_key, prev, user.address, 1_000_000, work_difficulty=1
        )
        lattice.process(send)
        open_block = make_open(
            user, send.block_hash, 1_000_000,
            representative=genesis_key.address, work_difficulty=1,
        )
        lattice.process(open_block)
        users.append(user)
        prev = send
    return lattice, genesis_key, users[0], users[1]
