"""Tier-1 tests for the sweep runner (repro.runner) and the uniform
bench API it drives.

The pool tests run against a *fake* bench module written into a tmp dir
and registered under a synthetic experiment id: the ``REPRO_BENCH_DIR``
environment override plus a parent-side registry monkeypatch are enough,
because the parent resolves module names before handing them to workers.
"""

import json
import textwrap

import pytest

from repro.core.experiment import EXPERIMENTS, Experiment, bench_dir
from repro.runner import (
    ExperimentSpec,
    ResultCache,
    Trial,
    aggregate_outcomes,
    build_report,
    build_spec,
    canonical_json,
    code_fingerprint,
    make_result,
    param_key,
    run_trials,
    trial_cache_key,
    validate_result,
    write_bench_json,
)
from repro.runner.pool import CRASH, ERROR, OK, TIMEOUT

pytestmark = pytest.mark.runner


class TestRegistry:
    def test_every_listed_module_imports(self):
        import importlib

        for experiment in EXPERIMENTS.values():
            for module_name in experiment.modules:
                importlib.import_module(module_name)

    def test_every_bench_exposes_uniform_run(self):
        for experiment in EXPERIMENTS.values():
            runner = experiment.load_runner()
            assert callable(runner), experiment.experiment_id

    def test_default_params_are_canonical(self):
        for experiment in EXPERIMENTS.values():
            assert canonical_json(dict(experiment.default_params))

    def test_bench_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert bench_dir() == tmp_path
        monkeypatch.delenv("REPRO_BENCH_DIR")
        assert bench_dir().name == "benchmarks"


class TestSpec:
    def test_expand_is_grid_times_seeds(self):
        spec = ExperimentSpec("E4", {"depth": [1, 6], "risk": [0.001]}, (0, 1, 2))
        trials = spec.expand()
        assert len(trials) == 6
        assert {t.params["depth"] for t in trials} == {1, 6}

    def test_param_key_ignores_insertion_order(self):
        assert param_key({"a": 1, "b": 2}) == param_key({"b": 2, "a": 1})

    def test_derived_seed_stable_and_point_dependent(self):
        a1 = Trial("E4", {"depth": 1}, 0).derived_seed
        a2 = Trial("E4", {"depth": 1}, 0).derived_seed
        b = Trial("E4", {"depth": 2}, 0).derived_seed
        c = Trial("E15", {"depth": 1}, 0).derived_seed
        assert a1 == a2
        assert len({a1, b, c}) == 3  # forked per experiment/point

    def test_build_spec_merges_defaults_and_overrides(self):
        spec = build_spec("E4", {"depth": [1, 3]}, seeds=(7,))
        points = spec.points()
        assert len(points) == 2
        assert all(p["risk"] == 0.001 for p in points)  # default kept
        with pytest.raises(KeyError):
            build_spec("NOPE")

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec("E4", {"depth": []})
        with pytest.raises(ValueError):
            ExperimentSpec("E4", seeds=())

    def test_make_result_envelope_and_validation(self):
        result = make_result("E4", {"depth": 6}, 3, {"ok": True, "x": 2})
        validate_result(result)
        assert result["metrics"] == {"ok": 1.0, "x": 2.0}
        with pytest.raises(ValueError):
            validate_result({"experiment_id": "E4"})
        with pytest.raises(ValueError):
            validate_result(make_result("E4", {}, 0, {"x": 1}) | {"metrics": {}})
        with pytest.raises(TypeError):
            make_result("E4", {}, 0, {"bad": "text"})


FAKE_BENCH = textwrap.dedent('''
    """Synthetic bench used by the runner tests."""
    import os
    import random
    import time

    from repro.runner import make_result


    def run(params, seed):
        mode = params.get("mode", "ok")
        if mode == "error":
            raise RuntimeError("deliberate bench failure")
        if mode == "crash_once":
            sentinel = params["sentinel"]
            if not os.path.exists(sentinel):
                open(sentinel, "w").close()
                os._exit(17)
        if mode == "sleep":
            time.sleep(params.get("sleep_s", 60.0))
        rng = random.Random(seed)
        metrics = {"value": rng.random() + params.get("offset", 0.0),
                   "seed_echo": seed}
        if params.get("with_trace"):
            return make_result("{EXP}", params, seed, metrics,
                               trace=[{"t": 0.0, "kind": "x"}])
        return make_result("{EXP}", params, seed, metrics)
''')


@pytest.fixture()
def fake_experiment(monkeypatch, tmp_path, request):
    """A synthetic experiment whose bench lives in a tmp dir."""
    experiment_id = f"TX{abs(hash(request.node.name)) % 10_000}"
    module_name = f"fake_bench_{experiment_id.lower()}"
    (tmp_path / f"{module_name}.py").write_text(
        FAKE_BENCH.replace("{EXP}", experiment_id)
    )
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    experiment = Experiment(
        experiment_id, "test", "synthetic runner-test experiment",
        (), f"{module_name}.py", default_params={"offset": 0.0},
    )
    monkeypatch.setitem(EXPERIMENTS, experiment_id, experiment)
    return experiment


class TestPool:
    def test_outcomes_in_submission_order(self, fake_experiment):
        trials = build_spec(
            fake_experiment.experiment_id, {"offset": [0.0, 1.0]}, seeds=(0, 1)
        ).expand()
        outcomes = run_trials(trials, jobs=2)
        assert [o.trial for o in outcomes] == trials
        assert all(o.status == OK for o in outcomes)
        for outcome in outcomes:
            assert outcome.result["seed"] == outcome.trial.derived_seed

    def test_jobs_level_does_not_change_aggregates(self, fake_experiment):
        spec = build_spec(
            fake_experiment.experiment_id, {"offset": [0.0, 2.5]}, seeds=(0, 1, 2)
        )
        first = aggregate_outcomes(spec, run_trials(spec.expand(), jobs=1))
        second = aggregate_outcomes(spec, run_trials(spec.expand(), jobs=3))
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_error_outcome_not_retried(self, fake_experiment):
        trials = build_spec(
            fake_experiment.experiment_id, {"mode": ["error"]}
        ).expand()
        [outcome] = run_trials(trials, retries=3)
        assert outcome.status == ERROR
        assert outcome.attempts == 1
        assert "deliberate bench failure" in outcome.error

    def test_crashed_worker_is_retried(self, fake_experiment, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        trials = build_spec(
            fake_experiment.experiment_id,
            {"mode": ["crash_once"], "sentinel": [sentinel]},
        ).expand()
        [outcome] = run_trials(trials, retries=1)
        assert outcome.status == OK
        assert outcome.attempts == 2

    def test_crash_without_retry_budget_is_reported(self, fake_experiment, tmp_path):
        sentinel = str(tmp_path / "crashed-fatal")
        trials = build_spec(
            fake_experiment.experiment_id,
            {"mode": ["crash_once"], "sentinel": [sentinel]},
        ).expand()
        [outcome] = run_trials(trials, retries=0)
        assert outcome.status == CRASH
        assert "exit code" in outcome.error

    def test_timeout_kills_the_worker(self, fake_experiment):
        trials = build_spec(
            fake_experiment.experiment_id, {"mode": ["sleep"], "sleep_s": [60.0]}
        ).expand()
        [outcome] = run_trials(trials, timeout_s=0.5)
        assert outcome.status == TIMEOUT
        assert outcome.elapsed_s < 30.0

    def test_progress_callback_sees_every_trial(self, fake_experiment):
        trials = build_spec(fake_experiment.experiment_id, seeds=(0, 1)).expand()
        seen = []
        run_trials(trials, jobs=2,
                   progress=lambda outcome, done, total: seen.append((done, total)))
        assert sorted(seen) == [(1, 2), (2, 2)]

    def test_trace_written_and_stripped(self, fake_experiment, tmp_path):
        trace_dir = tmp_path / "traces"
        trials = build_spec(
            fake_experiment.experiment_id, {"with_trace": [1]}
        ).expand()
        [outcome] = run_trials(trials, trace_dir=str(trace_dir))
        assert outcome.trace_path is not None
        records = [json.loads(line)
                   for line in open(outcome.trace_path).read().splitlines()]
        assert records == [{"t": 0.0, "kind": "x"}]
        assert "trace" not in outcome.result

    def test_invalid_jobs_rejected(self, fake_experiment):
        with pytest.raises(ValueError):
            run_trials([], jobs=0)
        with pytest.raises(ValueError):
            run_trials([], timeout_s=-1.0)


class TestCache:
    def test_second_sweep_is_served_from_cache(self, fake_experiment, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        trials = build_spec(
            fake_experiment.experiment_id, {"offset": [0.0, 1.0]}, seeds=(0, 1)
        ).expand()
        cold = run_trials(trials, cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 4}
        warm = run_trials(trials, cache=cache)
        assert cache.stats() == {"hits": 4, "misses": 4}
        assert all(o.cached for o in warm)
        assert [o.result for o in warm] == [o.result for o in cold]

    def test_key_commits_to_params_seed_and_code(self, fake_experiment):
        fingerprint = code_fingerprint(fake_experiment.experiment_id)
        base = Trial(fake_experiment.experiment_id, {"offset": 0.0}, 0)
        assert trial_cache_key(base, fingerprint) == trial_cache_key(base, fingerprint)
        keys = {
            trial_cache_key(base, fingerprint),
            trial_cache_key(
                Trial(fake_experiment.experiment_id, {"offset": 1.0}, 0), fingerprint
            ),
            trial_cache_key(
                Trial(fake_experiment.experiment_id, {"offset": 0.0}, 1), fingerprint
            ),
            trial_cache_key(base, "different-code"),
        }
        assert len(keys) == 4

    def test_editing_the_bench_invalidates_the_cache(
        self, fake_experiment, tmp_path
    ):
        before = code_fingerprint(fake_experiment.experiment_id)
        bench_file = tmp_path / fake_experiment.bench
        bench_file.write_text(bench_file.read_text() + "\n# changed\n")
        after = code_fingerprint(fake_experiment.experiment_id)
        assert before != after

    def test_corrupt_entry_is_a_miss(self, fake_experiment, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fingerprint = code_fingerprint(fake_experiment.experiment_id)
        trial = Trial(fake_experiment.experiment_id, {"offset": 0.0}, 0)
        path = cache.put(trial, fingerprint, make_result(
            fake_experiment.experiment_id, {"offset": 0.0}, 0, {"value": 1.0}
        ))
        path.write_text("{not json")
        assert cache.get(trial, fingerprint) is None


class TestReport:
    def test_bench_json_document(self, fake_experiment, tmp_path):
        spec = build_spec(
            fake_experiment.experiment_id, {"offset": [0.0, 1.0]}, seeds=(0, 1)
        )
        outcomes = run_trials(spec.expand(), jobs=2)
        path = write_bench_json(spec, outcomes, tmp_path / "results")
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.runner/bench.v1"
        assert document["counts"] == {
            "trials": 4, "ok": 4, "failed": 0, "cached": 0,
        }
        assert len(document["aggregates"]) == 2
        for aggregate in document["aggregates"]:
            assert aggregate["seeds"] == [0, 1]
            assert aggregate["metrics"]["value"]["n"] == 2
        assert len(document["trials"]) == 4

    def test_failures_are_recorded_not_aggregated(self, fake_experiment, tmp_path):
        spec = ExperimentSpec(
            fake_experiment.experiment_id, {"mode": ["error"]}
        )
        good = build_spec(fake_experiment.experiment_id)
        outcomes = run_trials(good.expand() + spec.expand())
        document = build_report(good, outcomes)
        assert document["counts"]["failed"] == 1
        assert len(document["aggregates"]) == 1
        failed = [t for t in document["trials"] if t["status"] == "error"]
        assert failed and "metrics" not in failed[0]

    def test_real_experiment_end_to_end(self, tmp_path):
        """The cheapest real bench (A3, analytic) through the whole stack."""
        spec = build_spec("A3", {"interval_s": [15.0, 600.0]}, seeds=(0,))
        outcomes = run_trials(spec.expand(), jobs=2,
                              cache=ResultCache(tmp_path / "cache"))
        assert all(o.ok for o in outcomes)
        document = build_report(spec, outcomes)
        rates = [a["metrics"]["orphan_rate"]["mean"]
                 for a in document["aggregates"]]
        assert rates[0] > rates[1]  # 15 s forks more than 600 s
