"""Tests for the sharded epoch-barrier propagation (repro.sim.sharded)
and the persistent shard-worker fan-out (repro.runner.pool.ShardWorkers).

The load-bearing property is seed-stability regardless of process
scheduling: jobs=1 (inline) and jobs=N (one worker process per shard)
must produce byte-identical arrival-time vectors.
"""

import numpy as np
import pytest

from repro.sim.sharded import (
    ShardState,
    ShardedConfig,
    ShardedPropagation,
    build_edges,
)


def small_config(**overrides):
    defaults = dict(total_nodes=300, shards=3, seed=11, epoch_s=0.5)
    defaults.update(overrides)
    return ShardedConfig(**defaults)


class TestConfigAndGraph:
    def test_config_validates(self):
        with pytest.raises(ValueError):
            ShardedConfig(total_nodes=1)
        with pytest.raises(ValueError):
            ShardedConfig(total_nodes=10, shards=11)
        with pytest.raises(ValueError):
            ShardedConfig(total_nodes=10, epoch_s=0.0)
        with pytest.raises(ValueError):
            ShardedConfig(total_nodes=10, loss_probability=1.0)

    def test_with_link_copies_the_four_link_fields(self):
        from repro.net.link import SLOW_LINK

        config = ShardedConfig.with_link(SLOW_LINK, total_nodes=50)
        assert config.latency_s == SLOW_LINK.latency_s
        assert config.jitter_s == SLOW_LINK.jitter_s
        assert config.bandwidth_bps == SLOW_LINK.bandwidth_bps
        assert config.loss_probability == SLOW_LINK.loss_probability

    def test_graph_is_seed_deterministic(self):
        a = build_edges(small_config())
        b = build_edges(small_config())
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        c = build_edges(small_config(seed=12))
        assert not np.array_equal(a[0], c[0])

    def test_graph_has_ring_plus_chords_and_no_self_loops(self):
        config = small_config(chords=2)
        heads, tails = build_edges(config)
        assert (heads != tails).all()
        # The ring alone contributes 2 directed edges per node.
        assert len(heads) >= 2 * config.total_nodes

    def test_shards_partition_the_node_range(self):
        config = small_config(shards=7)
        states = [ShardState(config, i) for i in range(7)]
        covered = []
        for state in states:
            covered.extend(range(state.lo, state.hi))
        assert covered == list(range(config.total_nodes))


class TestPropagation:
    def test_reaches_every_node(self):
        result = ShardedPropagation(small_config()).run()
        assert result.reached == 300
        finite = result.arrivals[np.isfinite(result.arrivals)]
        assert (finite >= 0).all()
        assert result.epochs >= 1
        assert result.cross_shard_messages > 0

    def test_origin_arrival_is_zero(self):
        result = ShardedPropagation(small_config()).run(origin=42)
        assert result.arrivals[42] == 0.0
        assert (np.delete(result.arrivals, 42) > 0).all()

    def test_seed_determinism_same_fingerprint(self):
        a = ShardedPropagation(small_config()).run()
        b = ShardedPropagation(small_config()).run()
        assert a.fingerprint() == b.fingerprint()
        assert np.array_equal(a.arrivals, b.arrivals)
        c = ShardedPropagation(small_config(seed=99)).run()
        assert c.fingerprint() != a.fingerprint()

    def test_single_shard_matches_multi_shard(self):
        """Sharding is an execution strategy, not a model change: the
        same (graph, per-shard delay streams) law means a different
        shard count changes the delay draws, but every partitioning
        must still deliver a full, valid propagation."""
        one = ShardedPropagation(small_config(shards=1)).run()
        many = ShardedPropagation(small_config(shards=6)).run()
        assert one.reached == many.reached == 300
        # Same topology, same delay law: medians agree loosely.
        assert abs(one.percentile(50) - many.percentile(50)) \
            < one.percentile(50)

    def test_lossy_links_slow_propagation(self):
        clean = ShardedPropagation(small_config()).run()
        lossy = ShardedPropagation(
            small_config(loss_probability=0.3)).run()
        assert lossy.reached == 300
        assert lossy.percentile(95) > clean.percentile(95)

    def test_epoch_granularity_does_not_change_arrivals(self):
        """Epoch barriers are a scheduling artifact: a finer epoch must
        produce the identical arrival vector, just across more epochs."""
        coarse = ShardedPropagation(small_config(epoch_s=2.0)).run()
        fine = ShardedPropagation(small_config(epoch_s=0.1)).run()
        assert np.array_equal(coarse.arrivals, fine.arrivals)
        assert fine.epochs > coarse.epochs

    def test_origin_validation(self):
        with pytest.raises(ValueError):
            ShardedPropagation(small_config()).run(origin=300)


@pytest.mark.runner
class TestMultiprocessParity:
    """jobs=1 vs jobs=N: the pinned scheduling-independence property."""

    def test_worker_pool_matches_inline_exactly(self):
        config = small_config(total_nodes=600, shards=4)
        inline = ShardedPropagation(config).run(jobs=1)
        pooled = ShardedPropagation(config).run(jobs=4)
        assert inline.fingerprint() == pooled.fingerprint()
        assert np.array_equal(inline.arrivals, pooled.arrivals)
        assert inline.epochs == pooled.epochs
        assert inline.cross_shard_messages == pooled.cross_shard_messages

    def test_shard_workers_surface_state_errors(self):
        from repro.runner.pool import ShardWorkers
        from repro.sim.sharded import _make_shard_state

        config = small_config()
        with ShardWorkers(_make_shard_state, config, 2) as workers:
            with pytest.raises(RuntimeError):
                workers.call("no_such_method", [(), ()])

    def test_shard_workers_validate_payload_count(self):
        from repro.runner.pool import ShardWorkers
        from repro.sim.sharded import _make_shard_state

        config = small_config()
        with ShardWorkers(_make_shard_state, config, 2) as workers:
            with pytest.raises(ValueError):
                workers.call("collect", [()])
