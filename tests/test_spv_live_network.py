"""SPV client following a live mining network (integration)."""

from dataclasses import replace

from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.blockchain.spv import SpvClient, make_payment_proof
from repro.blockchain.transaction import build_transaction

PARAMS = replace(BITCOIN, target_block_interval_s=10.0, confirmation_depth=3)


def test_spv_wallet_tracks_payment_through_live_network():
    """End to end: a payment is mined on a live PoW network; a light
    wallet that only syncs headers verifies it and waits for depth."""
    alice = KeyPair.from_seed(b"\x61" * 32)
    bob = KeyPair.from_seed(b"\x62" * 32)
    genesis = build_genesis_with_allocations(
        {alice.address: 10**9, bob.address: 10**9}
    )
    sim = Simulator(seed=13)
    net = Network(sim)
    nodes = [
        n for n in complete_topology(
            net, 4, lambda nid: BlockchainNode(nid, PARAMS, genesis), FAST_LINK
        )
        if isinstance(n, BlockchainNode)
    ]
    for i, node in enumerate(nodes):
        node.start_pow_mining(0.25, KeyPair.from_seed(bytes([70 + i]) * 32).address)

    tx = build_transaction(
        alice, nodes[0].utxo.spendable(alice.address), bob.address, 4242
    )
    nodes[0].submit_transaction(tx)
    sim.run(until=400)

    # Bob's light wallet syncs headers from any full node...
    wallet = SpvClient(genesis.header, check_pow=False)  # sim blocks use MAX_TARGET
    wallet.sync_from(nodes[1].chain)
    assert wallet.height == nodes[1].chain.height

    # ...and asks a full node for the payment proof.
    full = nodes[1]
    containing_id = full._tx_blocks[tx.txid]  # noqa: SLF001 - test introspection
    containing = full.chain.block(containing_id)
    proof = make_payment_proof(containing, tx.txid)

    confirmations = wallet.verify_payment(proof)
    assert confirmations >= PARAMS.confirmation_depth
    assert wallet.is_confirmed(proof, PARAMS.confirmation_depth)
    # Wallet storage is a small fraction of the full node's.
    assert wallet.storage_bytes() < full.chain.total_size_bytes()
