"""Tests for repro.workloads.open_loop (open-loop traffic injection)."""

from dataclasses import replace

import pytest

from repro.blockchain.params import BITCOIN
from repro.core.adapters import BlockchainLedger
from repro.net.link import FAST_LINK
from repro.workloads.open_loop import OpenLoopInjector, OpenLoopReport

PARAMS = replace(BITCOIN, target_block_interval_s=10.0,
                 max_block_size_bytes=4_000, confirmation_depth=2)


def make_ledger(seed=7):
    return BlockchainLedger(params=PARAMS, node_count=3,
                            link_params=FAST_LINK, seed=seed)


class TestOpenLoopInjector:
    def test_offers_poisson_traffic(self):
        ledger = make_ledger()
        ledger.setup(6, 10**9)
        injector = OpenLoopInjector.from_sim_stream(
            ledger, accounts=6, rate_tps=1.0, duration_s=60.0
        )
        injector.start()
        ledger.advance(90.0)
        report = injector.report
        assert report.offered > 0
        assert report.offered == report.submitted + report.rejected
        assert len(report.submit_times) == report.submitted

    def test_confirmations_accumulate_under_load(self):
        ledger = make_ledger()
        ledger.setup(6, 10**9)
        injector = OpenLoopInjector.from_sim_stream(
            ledger, accounts=6, rate_tps=1.0, duration_s=90.0
        )
        injector.start()
        ledger.advance(150.0)
        latencies = injector.confirmed_latencies()
        assert latencies
        assert all(lat >= 0 for lat in latencies)

    def test_injection_is_deterministic(self):
        def outcome():
            ledger = make_ledger(seed=11)
            ledger.setup(6, 10**9)
            injector = OpenLoopInjector.from_sim_stream(
                ledger, accounts=6, rate_tps=2.0, duration_s=40.0
            )
            injector.start()
            ledger.advance(60.0)
            return (injector.report.offered, injector.report.submitted,
                    injector.report.rejected)

        assert outcome() == outcome()

    def test_requires_live_deployment(self):
        ledger = make_ledger()  # setup() never called: no simulator yet
        with pytest.raises(ValueError):
            OpenLoopInjector.from_sim_stream(
                ledger, accounts=4, rate_tps=1.0, duration_s=10.0
            )

    def test_rejects_nonpositive_horizon(self):
        ledger = make_ledger()
        ledger.setup(4, 10**9)
        with pytest.raises(ValueError):
            OpenLoopInjector.from_sim_stream(
                ledger, accounts=4, rate_tps=1.0, duration_s=0.0
            )


class TestOpenLoopReport:
    def test_backpressure_fraction(self):
        report = OpenLoopReport(offered=10, submitted=7, rejected=3)
        assert report.backpressure_fraction == pytest.approx(0.3)

    def test_backpressure_fraction_empty(self):
        assert OpenLoopReport().backpressure_fraction == 0.0
