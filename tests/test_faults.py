"""Tests for repro.faults (scheduled crashes, churn, link faults,
partitions) — the degraded regimes of Section IV / Section VI-B."""

import pytest

from repro.faults import ChurnParams, FaultInjector
from repro.net.link import BLACKHOLE_LINK, FAST_LINK, LinkParams
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.topology import complete_topology, line_topology
from repro.sim.simulator import Simulator
from repro.trace import CRASH, DEGRADE, HEAL, PARTITION, RESTART, RESTORE

pytestmark = pytest.mark.faults


class Recorder(NetworkNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def handle_message(self, sender_id, message):
        self.received.append((sender_id, message.payload))


def make_message(payload="x", size=100):
    from repro.net.message import Message

    return Message(kind="test", payload=payload, size_bytes=size)


def build(count=4, topology=complete_topology, link=FAST_LINK, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    nodes = topology(net, count, Recorder, link)
    return sim, net, list(nodes), FaultInjector(net)


class TestCrashRestart:
    def test_crash_takes_node_offline(self):
        sim, net, nodes, injector = build()
        injector.crash("n1")
        assert not nodes[1].online
        assert injector.crashes_injected == 1
        assert len(net.tracer.events(CRASH)) == 1

    def test_crash_is_idempotent(self):
        sim, net, nodes, injector = build()
        injector.crash("n1")
        injector.crash("n1")
        assert injector.crashes_injected == 1

    def test_restart_only_after_crash(self):
        sim, net, nodes, injector = build()
        injector.restart("n1")  # already online: no-op
        assert injector.restarts_injected == 0
        injector.crash("n1")
        injector.restart("n1")
        assert nodes[1].online
        assert injector.restarts_injected == 1
        assert len(net.tracer.events(RESTART)) == 1

    def test_crash_at_with_duration_schedules_both(self):
        sim, net, nodes, injector = build()
        injector.crash_at(10.0, "n2", duration_s=5.0)
        sim.run(until=12.0)
        assert not nodes[2].online
        sim.run(until=16.0)
        assert nodes[2].online

    def test_crash_window_drops_then_recovers_gossip(self):
        """A broadcast during a crash window reaches the crashed node
        after its restart (parked retry kicked by set_online)."""
        sim, net, nodes, injector = build()
        injector.crash_at(1.0, "n3", duration_s=20.0)
        sim.schedule_at(2.0, lambda: nodes[0].broadcast(make_message("late")))
        sim.run()
        assert ("late" in [p for _, p in nodes[3].received])

    def test_crash_at_rejects_bad_duration(self):
        _, _, _, injector = build()
        with pytest.raises(ValueError):
            injector.crash_at(1.0, "n0", duration_s=0.0)


class TestChurn:
    def test_churn_schedules_cycles(self):
        sim, net, nodes, injector = build(seed=3)
        cycles = injector.churn(
            ["n0", "n1"], ChurnParams(mtbf_s=20.0, downtime_s=5.0, until_s=200.0)
        )
        assert cycles > 0
        sim.run(until=200.0)
        assert injector.crashes_injected == cycles
        assert injector.restarts_injected == cycles
        assert all(n.online for n in nodes)

    def test_churn_schedule_is_per_node_stable(self):
        """Adding churn on another node does not perturb the first
        node's schedule (label-forked RNG streams)."""

        def crash_times(node_ids):
            sim, net, nodes, injector = build(seed=3)
            injector.churn(
                node_ids, ChurnParams(mtbf_s=20.0, downtime_s=5.0, until_s=200.0)
            )
            times = []
            original = injector.crash

            def recording_crash(node_id):
                if node_id == "n0":
                    times.append(sim.now)
                original(node_id)

            injector.crash = recording_crash
            sim.run(until=200.0)
            return times

        assert crash_times(["n0"]) == crash_times(["n0", "n1"])

    def test_churn_requires_horizon(self):
        _, _, _, injector = build()
        with pytest.raises(ValueError):
            injector.churn(["n0"], ChurnParams(mtbf_s=10.0, downtime_s=1.0))

    def test_churn_params_validate(self):
        with pytest.raises(ValueError):
            ChurnParams(mtbf_s=0.0, downtime_s=1.0)
        with pytest.raises(ValueError):
            ChurnParams(mtbf_s=1.0, downtime_s=-1.0)


class TestLinkFaults:
    def test_degrade_and_restore_roundtrip(self):
        sim, net, nodes, injector = build()
        original = net.link_params("n0", "n1")
        degraded = LinkParams(latency_s=2.0, loss_probability=0.5)
        injector.degrade_link("n0", "n1", degraded)
        assert net.link_params("n0", "n1") is degraded
        assert net.link_params("n1", "n0") is degraded
        injector.restore_link("n0", "n1")
        assert net.link_params("n0", "n1") is original
        assert len(net.tracer.events(DEGRADE)) == 1
        assert len(net.tracer.events(RESTORE)) == 1

    def test_restore_without_degrade_is_noop(self):
        sim, net, nodes, injector = build()
        injector.restore_link("n0", "n1")
        assert net.tracer.events(RESTORE) == []

    def test_double_degrade_restores_true_original(self):
        """Nested degradations: each degrade opens a window, each
        restore closes one, and only the last restore swaps the true
        original back in (never the intermediate degraded params)."""
        sim, net, nodes, injector = build()
        original = net.link_params("n0", "n1")
        injector.degrade_link("n0", "n1", LinkParams(loss_probability=0.5))
        injector.degrade_link("n0", "n1", BLACKHOLE_LINK)
        injector.restore_link("n0", "n1")
        # One window still open: the link stays degraded.
        assert net.link_params("n0", "n1") is BLACKHOLE_LINK
        injector.restore_link("n0", "n1")
        assert net.link_params("n0", "n1") is original

    def test_overlapping_degrade_windows_do_not_cancel_each_other(self):
        """Regression: the first window's scheduled restore used to pop
        the saved original and prematurely cancel the still-active
        second degradation.  With window depth tracking, the link stays
        degraded until the *last* overlapping window ends."""
        sim, net, nodes, injector = build()
        original = net.link_params("n0", "n1")
        first = LinkParams(latency_s=5.0, loss_probability=0.5)
        second = BLACKHOLE_LINK
        # Windows [10, 30) and [20, 50) overlap on [20, 30).
        injector.degrade_link_at(10.0, "n0", "n1", first, duration_s=20.0)
        injector.degrade_link_at(20.0, "n0", "n1", second, duration_s=30.0)
        sim.run(until=35.0)
        # First window's restore fired at t=30, but the second window is
        # still open: the link must remain degraded.
        assert net.link_params("n0", "n1") is second
        assert injector.fault_counts()["degraded_links_active"] == 2
        sim.run(until=55.0)
        # Second window's restore at t=50 closes the last window.
        assert net.link_params("n0", "n1") is original
        assert injector.fault_counts()["degraded_links_active"] == 0

    def test_blackhole_window_on_a_line(self):
        """A blackhole on the only path stalls gossip; restore recovers
        it via the retry queue."""
        sim, net, nodes, injector = build(count=3, topology=line_topology)
        injector.blackhole_at(1.0, "n1", "n2", duration_s=60.0)
        sim.schedule_at(2.0, lambda: nodes[0].broadcast(make_message("thru")))
        sim.run(until=30.0)
        assert nodes[1].received and not nodes[2].received
        sim.run()
        assert [p for _, p in nodes[2].received] == ["thru"]

    def test_degrade_unknown_link_raises(self):
        _, _, _, injector = build(count=3, topology=line_topology)
        with pytest.raises(KeyError):
            injector.degrade_link("n0", "n2", BLACKHOLE_LINK)


class TestPartitionSchedules:
    def test_partition_at_with_auto_heal(self):
        sim, net, nodes, injector = build()
        injector.partition_at(10.0, [["n0", "n1"], ["n2", "n3"]],
                              heal_after_s=20.0)
        sim.schedule_at(15.0, lambda: nodes[0].broadcast(make_message("cut")))
        sim.run(until=20.0)
        assert nodes[2].received == [] and nodes[3].received == []
        sim.run()
        for node in nodes[1:]:
            assert [p for _, p in node.received] == ["cut"]
        assert len(net.tracer.events(PARTITION)) == 1
        assert len(net.tracer.events(HEAL)) == 1

    def test_partition_at_rejects_bad_heal(self):
        _, _, _, injector = build()
        with pytest.raises(ValueError):
            injector.partition_at(1.0, [["n0"], ["n1"]], heal_after_s=0.0)

    def test_fault_counts(self):
        sim, net, nodes, injector = build()
        injector.crash("n0")
        injector.restart("n0")
        injector.degrade_link("n1", "n2", BLACKHOLE_LINK)
        injector.partition_at(5.0, [["n0", "n1"], ["n2", "n3"]],
                              heal_after_s=5.0)
        sim.run()
        counts = injector.fault_counts()
        assert counts["crashes"] == 1
        assert counts["restarts"] == 1
        assert counts["degraded_links_active"] == 2  # both directions
        assert counts["partitions"] == 1
        assert counts["heals"] == 1
