"""Tests for repro.workloads (generators and attacks)."""

import random

import pytest

from repro.confirmation.nakamoto import attacker_success_probability
from repro.workloads.attacks import DoubleSpendAttacker, SpamAttacker
from repro.workloads.generators import PaymentWorkload, constant_rate_events


class TestPaymentWorkload:
    def test_rate_matches(self):
        events = PaymentWorkload(accounts=10, rate_tps=5.0, seed=1).generate(1000.0)
        assert 4500 < len(events) < 5500

    def test_no_self_payments(self):
        events = PaymentWorkload(accounts=3, rate_tps=10.0, seed=2).generate(100.0)
        assert all(e.sender_index != e.recipient_index for e in events)

    def test_amounts_in_range(self):
        wl = PaymentWorkload(
            accounts=5, rate_tps=10.0, min_amount=10, max_amount=20, seed=3
        )
        assert all(10 <= e.amount <= 20 for e in wl.generate(50.0))

    def test_times_increasing(self):
        events = PaymentWorkload(accounts=5, rate_tps=10.0, seed=4).generate(50.0)
        assert all(a.time_s < b.time_s for a, b in zip(events, events[1:]))

    def test_zipf_concentrates_traffic(self):
        flat = PaymentWorkload(accounts=50, rate_tps=10.0, zipf_alpha=0.0, seed=5)
        skewed = PaymentWorkload(accounts=50, rate_tps=10.0, zipf_alpha=1.5, seed=5)

        def top_share(wl):
            events = wl.generate(2000.0)
            counts = {}
            for e in events:
                counts[e.sender_index] = counts.get(e.sender_index, 0) + 1
            return max(counts.values()) / len(events)

        assert top_share(skewed) > 3 * top_share(flat)

    def test_deterministic_by_seed(self):
        a = PaymentWorkload(accounts=5, rate_tps=5.0, seed=9).generate(100.0)
        b = PaymentWorkload(accounts=5, rate_tps=5.0, seed=9).generate(100.0)
        assert a == b

    def test_generate_count(self):
        events = PaymentWorkload(accounts=5, rate_tps=5.0, seed=1).generate_count(37)
        assert len(events) == 37

    def test_validation(self):
        with pytest.raises(ValueError):
            PaymentWorkload(accounts=1, rate_tps=1.0)
        with pytest.raises(ValueError):
            PaymentWorkload(accounts=2, rate_tps=0.0)
        with pytest.raises(ValueError):
            PaymentWorkload(accounts=2, rate_tps=1.0, min_amount=5, max_amount=4)

    def test_constant_rate(self):
        events = constant_rate_events(10, rate_tps=2.0)
        assert len(events) == 10
        assert events[1].time_s - events[0].time_s == pytest.approx(0.5)


class TestDoubleSpendAttacker:
    def test_monte_carlo_matches_nakamoto(self):
        """E15's core check: simulation converges to the closed form."""
        for share, depth in ((0.1, 2), (0.2, 3), (0.3, 4)):
            attacker = DoubleSpendAttacker(share, depth, random.Random(42))
            empirical = attacker.success_rate(trials=4000)
            analytic = attacker_success_probability(share, depth)
            assert empirical == pytest.approx(analytic, abs=0.03)

    def test_stronger_attacker_wins_more(self):
        weak = DoubleSpendAttacker(0.1, 3, random.Random(0)).success_rate(2000)
        strong = DoubleSpendAttacker(0.4, 3, random.Random(0)).success_rate(2000)
        assert strong > weak

    def test_deeper_confirmation_wins_less(self):
        shallow = DoubleSpendAttacker(0.25, 1, random.Random(1)).success_rate(2000)
        deep = DoubleSpendAttacker(0.25, 6, random.Random(1)).success_rate(2000)
        assert deep < shallow

    def test_outcome_contains_race_detail(self):
        outcome = DoubleSpendAttacker(0.3, 2, random.Random(2)).run_once()
        assert outcome.honest_blocks >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DoubleSpendAttacker(0.0, 1, random.Random(0))
        with pytest.raises(ValueError):
            DoubleSpendAttacker(0.5, 0, random.Random(0))
        with pytest.raises(ValueError):
            DoubleSpendAttacker(0.3, 1, random.Random(0)).success_rate(0)


class TestSpamAttacker:
    def test_spam_rate_bounded_by_work(self):
        """Section III-B: anti-spam PoW caps the spam rate at
        hashrate/difficulty."""
        attacker = SpamAttacker(hashrate_hps=1_000_000, work_difficulty=4096)
        assert attacker.max_spam_tps == pytest.approx(1_000_000 / 4096)

    def test_raising_difficulty_throttles(self):
        cheap = SpamAttacker(1e6, 1024).max_spam_tps
        costly = SpamAttacker(1e6, 1 << 20).max_spam_tps
        assert cheap / costly == pytest.approx(1024)

    def test_campaign_cost(self):
        attacker = SpamAttacker(1e6, 4096)
        cost = attacker.campaign_cost(10_000)
        assert cost.total_hashes == 10_000 * 4096
        assert cost.wall_clock_s == pytest.approx(10_000 * 4096 / 1e6)

    def test_legitimate_user_unaffected(self):
        """One tx costs milliseconds; 1M spam txs cost over an hour."""
        attacker = SpamAttacker(1e6, 4096)
        single = attacker.campaign_cost(1).wall_clock_s
        flood = attacker.campaign_cost(1_000_000).wall_clock_s
        assert single < 0.01
        assert flood > 3600

    def test_spam_times_respect_rate(self):
        attacker = SpamAttacker(1e6, 4096)
        times = attacker.spam_times(random.Random(0), duration_s=10.0)
        expected = attacker.max_spam_tps * 10
        assert expected * 0.7 < len(times) < expected * 1.3

    def test_validation(self):
        with pytest.raises(ValueError):
            SpamAttacker(0, 100)
        with pytest.raises(ValueError):
            SpamAttacker(1e6, 100).campaign_cost(-1)
