"""Tests for repro.perf (microbenchmark suite + regression gate).

Benches run here at tiny scales — these tests check plumbing (results,
reports, the CI gate's arithmetic), never absolute speed.
"""

import json

import pytest

from repro.perf.profiling import SORT_KEYS, profile_bench
from repro.perf.suite import (
    BENCHES,
    BenchResult,
    build_report,
    calibration_score,
    check_regressions,
    render_results,
    run_bench,
    run_suite,
)


def _report(benches, calibration):
    """Minimal report document for gate tests."""
    return {
        "schema": 1,
        "calibration_ops_per_s": calibration,
        "benchmarks": {
            name: {"ops": 100, "wall_s": 1.0, "ops_per_s": ops}
            for name, ops in benches.items()
        },
    }


class TestRunBench:
    def test_registry_names_are_runnable(self):
        # Every registered bench accepts a scale knob; exercise the two
        # cheapest end-to-end.
        assert "event_loop" in BENCHES and "e9_blockchain_tps" in BENCHES
        result = run_bench("event_loop", scale=0.01)
        assert result.ops > 0
        assert result.wall_s > 0
        assert result.ops_per_s == pytest.approx(result.ops / result.wall_s)

    def test_unknown_bench_rejected(self):
        with pytest.raises(KeyError):
            run_suite(["no_such_bench"])

    def test_run_suite_subset_with_progress(self):
        seen = []
        results = run_suite(["event_cancel"], scale=0.01, progress=seen.append)
        assert list(results) == ["event_cancel"]
        assert seen == [results["event_cancel"]]

    def test_calibration_is_positive(self):
        assert calibration_score(spins=10_000, repeats=1) > 0


class TestBuildReport:
    def test_shape_and_json_roundtrip(self):
        results = {"x": BenchResult(name="x", ops=100, wall_s=0.5)}
        report = build_report(results, calibration=1000.0, scale=0.1)
        parsed = json.loads(json.dumps(report))
        assert parsed["schema"] == 1
        assert parsed["scale"] == 0.1
        assert parsed["benchmarks"]["x"]["ops_per_s"] == 200.0

    def test_speedup_vs_reference_normalized(self):
        results = {"x": BenchResult(name="x", ops=400, wall_s=1.0)}
        # Reference ran at 200 ops/s on a machine half as fast: raw
        # speedup is 2x but normalized speedup is 1x.
        reference = _report({"x": 200.0}, calibration=500.0)
        report = build_report(results, calibration=1000.0, reference=reference)
        assert report["speedup_vs_reference"]["x"] == 2.0
        assert report["speedup_vs_reference_normalized"]["x"] == 1.0

    def test_reference_missing_bench_skipped(self):
        results = {"new_bench": BenchResult(name="new_bench", ops=1, wall_s=1.0)}
        report = build_report(
            results, calibration=1.0, reference=_report({}, calibration=1.0)
        )
        assert report["speedup_vs_reference"] == {}


class TestCheckRegressions:
    def test_no_failures_when_equal(self):
        base = _report({"x": 100.0}, calibration=1000.0)
        assert check_regressions(base, base) == []

    def test_large_regression_fails(self):
        base = _report({"x": 100.0}, calibration=1000.0)
        cur = _report({"x": 60.0}, calibration=1000.0)
        failures = check_regressions(cur, base, tolerance=0.30)
        assert len(failures) == 1
        assert "x" in failures[0]

    def test_regression_within_tolerance_passes(self):
        base = _report({"x": 100.0}, calibration=1000.0)
        cur = _report({"x": 75.0}, calibration=1000.0)
        assert check_regressions(cur, base, tolerance=0.30) == []

    def test_calibration_normalizes_slow_machine(self):
        # Half the throughput on a machine measured half as fast is NOT a
        # regression once normalized.
        base = _report({"x": 100.0}, calibration=1000.0)
        cur = _report({"x": 50.0}, calibration=500.0)
        assert check_regressions(cur, base, tolerance=0.30) == []

    def test_bench_only_in_baseline_skipped(self):
        base = _report({"x": 100.0, "gone": 5.0}, calibration=1000.0)
        cur = _report({"x": 100.0}, calibration=1000.0)
        assert check_regressions(cur, base) == []


class TestRendering:
    def test_render_results_table(self):
        results = {"x": BenchResult(name="x", ops=100, wall_s=0.5)}
        table = render_results(results)
        assert "x" in table and "200.0" in table


class TestProfiling:
    def test_profile_bench_reports_hotspots(self):
        text, wall = profile_bench("event_loop", scale=0.01, top=5)
        assert wall > 0
        # cProfile output should name the simulator's run loop.
        assert "run" in text

    def test_profile_sort_keys(self):
        assert {"cumulative", "tottime", "calls"} <= set(SORT_KEYS)

    def test_profile_unknown_bench_rejected(self):
        with pytest.raises(KeyError):
            profile_bench("no_such_bench")
