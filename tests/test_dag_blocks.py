"""Tests for repro.dag.blocks (Figure 2/3 block types)."""

import pytest

from repro.common.errors import ValidationError
from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.dag.blocks import (
    BlockType,
    NanoBlock,
    make_change,
    make_open,
    make_receive,
    make_send,
)


@pytest.fixture
def opened(rng):
    """(keypair, open_block) — an account opened with 1000."""
    kp = KeyPair.generate(rng)
    block = make_open(kp, Hash.zero(), 1000, representative=kp.address)
    return kp, block


class TestStructure:
    def test_open_has_no_predecessor(self, opened):
        _, block = opened
        assert block.block_type == BlockType.OPEN
        assert block.previous.is_zero()

    def test_open_with_predecessor_rejected(self, rng):
        kp = KeyPair.generate(rng)
        with pytest.raises(ValidationError):
            NanoBlock(
                block_type=BlockType.OPEN,
                account=kp.address,
                previous=Hash(b"\x01" * 32),
                representative=kp.address,
                balance=10,
                link=b"\x00" * 32,
            )

    def test_successor_needs_predecessor(self, rng):
        kp = KeyPair.generate(rng)
        with pytest.raises(ValidationError):
            NanoBlock(
                block_type=BlockType.SEND,
                account=kp.address,
                previous=Hash.zero(),
                representative=kp.address,
                balance=10,
                link=b"\x00" * 32,
            )

    def test_negative_balance_rejected(self, rng):
        kp = KeyPair.generate(rng)
        with pytest.raises(ValidationError):
            NanoBlock(
                block_type=BlockType.OPEN,
                account=kp.address,
                previous=Hash.zero(),
                representative=kp.address,
                balance=-1,
                link=b"\x00" * 32,
            )

    def test_hash_covers_balance(self, opened, rng):
        kp, block = opened
        other = make_open(kp, Hash.zero(), 999, representative=kp.address)
        assert other.block_hash != block.block_hash


class TestSend:
    def test_balance_decreases(self, opened, rng):
        kp, head = opened
        dest = KeyPair.generate(rng)
        send = make_send(kp, head, dest.address, 300)
        assert send.balance == 700
        assert send.destination == dest.address
        assert send.previous == head.block_hash

    def test_overdraw_rejected(self, opened, rng):
        kp, head = opened
        dest = KeyPair.generate(rng)
        with pytest.raises(ValidationError):
            make_send(kp, head, dest.address, 1001)

    def test_zero_send_rejected(self, opened, rng):
        kp, head = opened
        dest = KeyPair.generate(rng)
        with pytest.raises(ValidationError):
            make_send(kp, head, dest.address, 0)

    def test_full_balance_send_allowed(self, opened, rng):
        kp, head = opened
        dest = KeyPair.generate(rng)
        assert make_send(kp, head, dest.address, 1000).balance == 0


class TestReceiveAndChange:
    def test_receive_adds_amount(self, opened, rng):
        kp, head = opened
        source = Hash(b"\x42" * 32)
        receive = make_receive(kp, head, source, 250)
        assert receive.balance == 1250
        assert receive.source == source

    def test_change_keeps_balance(self, opened, rng):
        kp, head = opened
        new_rep = KeyPair.generate(rng)
        change = make_change(kp, head, new_rep.address)
        assert change.balance == head.balance
        assert change.representative == new_rep.address

    def test_destination_only_on_sends(self, opened):
        _, block = opened
        with pytest.raises(ValidationError):
            _ = block.destination

    def test_source_only_on_open_receive(self, opened, rng):
        kp, head = opened
        send = make_send(kp, head, KeyPair.generate(rng).address, 1)
        with pytest.raises(ValidationError):
            _ = send.source


class TestSignatureAndWork:
    def test_signature_verifies(self, opened):
        _, block = opened
        assert block.verify_signature()

    def test_foreign_signature_fails(self, opened, rng):
        kp, block = opened
        from dataclasses import replace

        mallory = KeyPair.generate(rng)
        forged = replace(block, public_key=mallory.public_key)
        assert not forged.verify_signature()

    def test_work_attached_and_checked(self, rng):
        kp = KeyPair.generate(rng)
        block = make_open(
            kp, Hash.zero(), 100, representative=kp.address, work_difficulty=32
        )
        assert block.verify_work(32)

    def test_work_root_is_previous_or_account(self, opened, rng):
        kp, head = opened
        assert head.work_root() == bytes(kp.address)
        send = make_send(kp, head, KeyPair.generate(rng).address, 1)
        assert send.work_root() == bytes(head.block_hash)

    def test_serialized_size_fixed_overhead(self, opened):
        _, block = opened
        # body + 32-byte public key + 64-byte signature + 8-byte work
        from repro.dag.blocks import NanoBlock

        assert block.size_bytes == (
            len(block._signed_body()) + NanoBlock.AUTH_OVERHEAD_BYTES
        )
