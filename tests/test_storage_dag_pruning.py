"""Tests for repro.storage.dag_pruning and growth models (Section V-B)."""

import pytest

from repro.common.units import GB
from repro.crypto.keys import KeyPair
from repro.dag.blocks import make_receive, make_send
from repro.storage.dag_pruning import (
    DagNodeType,
    dag_footprint,
    footprint_by_type,
    head_blocks,
    prune_lattice,
)
from repro.storage.growth import (
    GrowthModel,
    LEDGER_SNAPSHOT_2018,
    ordering_matches_snapshot,
    snapshot_ratios,
)


def churn(lattice, alice, bob, rounds=10):
    """alice -> bob settled transfers to grow both chains."""
    for _ in range(rounds):
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 10,
            work_difficulty=1,
        )
        lattice.process(send)
        receive = make_receive(
            bob, lattice.chain(bob.address).head, send.block_hash, 10,
            work_difficulty=1,
        )
        lattice.process(receive)


class TestPruneLattice:
    def test_prune_keeps_balances(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        churn(lattice, alice, bob, rounds=10)
        balance_a = lattice.balance(alice.address)
        balance_b = lattice.balance(bob.address)
        result = prune_lattice(lattice)
        assert result.bytes_freed > 0
        assert lattice.balance(alice.address) == balance_a
        assert lattice.balance(bob.address) == balance_b

    def test_prune_leaves_one_head_per_account(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        churn(lattice, alice, bob, rounds=10)
        accounts = lattice.account_count()
        prune_lattice(lattice)
        assert lattice.block_count() == accounts  # nothing pending here

    def test_unsettled_sends_survive_pruning(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 42,
            work_difficulty=1,
        )
        lattice.process(send)
        prune_lattice(lattice)
        assert send.block_hash in lattice
        pending = lattice.pending_for(bob.address)
        assert len(pending) == 1 and pending[0].amount == 42

    def test_fraction_freed_grows_with_history(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        churn(lattice, alice, bob, rounds=20)
        result = prune_lattice(lattice)
        assert result.fraction_freed > 0.8  # long chains, few heads


class TestNodeTypes:
    def test_footprints_ordered(self, funded_lattice):
        """Section V-B: historical > current > light."""
        lattice, gk, alice, bob = funded_lattice
        churn(lattice, alice, bob, rounds=10)
        footprints = footprint_by_type(lattice)
        assert (
            footprints["historical"]
            > footprints["current"]
            > footprints["light"] == 0
        )

    def test_current_counts_heads_and_pending(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        churn(lattice, alice, bob, rounds=5)
        heads = head_blocks(lattice)
        expected = sum(b.size_bytes for b in heads.values())
        assert dag_footprint(lattice, DagNodeType.CURRENT) == expected

    def test_historical_is_full_ledger(self, funded_lattice):
        lattice, *_ = funded_lattice
        assert dag_footprint(lattice, DagNodeType.HISTORICAL) == (
            lattice.serialized_size()
        )


class TestGrowthModels:
    def test_linear_growth(self):
        model = GrowthModel("x", entries_per_second=2.0, bytes_per_entry=100.0)
        assert model.size_at(0) == 0
        assert model.size_at(10) == 2000
        assert model.growth_per_year() == pytest.approx(2 * 100 * 365 * 86400)

    def test_genesis_offset(self):
        model = GrowthModel("x", 1.0, 1.0, genesis_bytes=500.0)
        assert model.size_at(0) == 500

    def test_series_endpoints(self):
        model = GrowthModel("x", 1.0, 10.0)
        series = model.series(horizon_s=100.0, points=5)
        assert len(series) == 5
        assert series[0] == (0.0, 0.0)
        assert series[-1][0] == pytest.approx(100.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            GrowthModel("x", 1.0, 1.0).size_at(-1)

    def test_snapshot_constants(self):
        assert LEDGER_SNAPSHOT_2018["bitcoin"].size_bytes == pytest.approx(145.95 * GB)
        assert LEDGER_SNAPSHOT_2018["nano"].block_count == 6_700_078

    def test_snapshot_ratios(self):
        ratios = snapshot_ratios()
        assert ratios["nano"] == 1.0
        assert ratios["bitcoin"] == pytest.approx(145.95 / 3.42, rel=1e-3)

    def test_ordering_check(self):
        assert ordering_matches_snapshot({"bitcoin": 3, "ethereum": 2, "nano": 1})
        assert not ordering_matches_snapshot({"bitcoin": 1, "ethereum": 2, "nano": 3})
        with pytest.raises(ValueError):
            ordering_matches_snapshot({"bitcoin": 1})
