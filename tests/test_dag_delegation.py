"""End-to-end representative rotation (Section III-B delegation)."""

import pytest

from repro.common.errors import ValidationError
from repro.crypto.keys import KeyPair
from repro.net.link import LinkParams
from repro.dag.bootstrap import build_nano_testbed, fund_accounts

LINK = LinkParams(latency_s=0.05, jitter_s=0.02)


@pytest.fixture
def world():
    tb = build_nano_testbed(
        node_count=6, representative_count=3, seed=14, link_params=LINK
    )
    users = fund_accounts(tb, 3, 10**9, settle_time=1.5)
    tb.simulator.run(until=tb.simulator.now + 5)
    return tb, users


class TestDelegation:
    def test_change_moves_weight_on_all_replicas(self, world):
        tb, users = world
        user = users[0]
        wallet = tb.node_for(user.address)
        old_rep = wallet.lattice.reps.representative_of(user.address)
        new_rep = tb.representatives[2].address
        assert old_rep != new_rep

        old_weights = [n.lattice.reps.weight(new_rep) for n in tb.nodes]
        wallet.change_representative(user.address, new_rep)
        tb.simulator.run(until=tb.simulator.now + 5)

        for node, before in zip(tb.nodes, old_weights):
            assert node.lattice.reps.weight(new_rep) == before + 10**9
        # Balance unchanged by a change block.
        assert {n.balance(user.address) for n in tb.nodes} == {10**9}

    def test_change_block_confirmed_by_votes(self, world):
        tb, users = world
        user = users[1]
        wallet = tb.node_for(user.address)
        block = wallet.change_representative(
            user.address, tb.representatives[0].address
        )
        tb.simulator.run(until=tb.simulator.now + 5)
        assert tb.nodes[-1].is_confirmed(block.block_hash)

    def test_future_sends_count_toward_new_rep(self, world):
        tb, users = world
        user = users[0]
        wallet = tb.node_for(user.address)
        new_rep = tb.representatives[1].address
        wallet.change_representative(user.address, new_rep)
        tb.simulator.run(until=tb.simulator.now + 3)
        before = tb.nodes[0].lattice.reps.weight(new_rep)
        wallet.send_payment(user.address, users[2].address, 1_000)
        tb.simulator.run(until=tb.simulator.now + 5)
        # The send decreased the account's balance and thus the rep's weight.
        assert tb.nodes[0].lattice.reps.weight(new_rep) == before - 1_000

    def test_change_requires_local_key(self, world):
        tb, users = world
        stranger_node = tb.nodes[-1]
        with pytest.raises(ValidationError):
            stranger_node.change_representative(
                users[0].address, tb.representatives[0].address
            )
