"""Tests for repro.core.invariants (deployment auditing)."""

from dataclasses import replace

import pytest

from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK, LinkParams
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.core.invariants import audit_blockchain, audit_lattice
from repro.dag.bootstrap import build_nano_testbed, fund_accounts

PARAMS = replace(BITCOIN, target_block_interval_s=10.0, confirmation_depth=3)


@pytest.fixture
def mined_network():
    keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(2)]
    genesis = build_genesis_with_allocations({k.address: 10**6 for k in keys})
    sim = Simulator(seed=1)
    net = Network(sim)
    nodes = [
        n for n in complete_topology(
            net, 4, lambda nid: BlockchainNode(nid, PARAMS, genesis), FAST_LINK
        )
        if isinstance(n, BlockchainNode)
    ]
    for i, node in enumerate(nodes):
        node.start_pow_mining(0.25, KeyPair.from_seed(bytes([60 + i]) * 32).address)
    sim.run(until=400)
    return nodes, 2 * 10**6


class TestBlockchainAudit:
    def test_healthy_network_passes(self, mined_network):
        nodes, supply = mined_network
        report = audit_blockchain(nodes, expected_supply_base=supply)
        assert report.ok, report.render()

    def test_supply_violation_detected(self, mined_network):
        nodes, supply = mined_network
        report = audit_blockchain(nodes, expected_supply_base=supply + 999)
        assert not report.ok
        assert any(v.invariant == "supply" for v in report.violations)

    def test_render_mentions_nodes(self, mined_network):
        nodes, supply = mined_network
        report = audit_blockchain(nodes, expected_supply_base=supply + 1)
        assert "n0" in report.render()

    def test_empty_deployment_flagged(self):
        report = audit_blockchain([], expected_supply_base=0)
        assert not report.ok

    def test_single_node_deployment_audits_clean(self):
        """A one-replica network trivially agrees with itself; supply and
        double-spend checks still run."""
        keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(2)]
        genesis = build_genesis_with_allocations({k.address: 10**6 for k in keys})
        sim = Simulator(seed=9)
        net = Network(sim)
        nodes = [
            n for n in complete_topology(
                net, 1, lambda nid: BlockchainNode(nid, PARAMS, genesis),
                FAST_LINK,
            )
            if isinstance(n, BlockchainNode)
        ]
        nodes[0].start_pow_mining(1.0, keys[0].address)
        sim.run(until=100)
        report = audit_blockchain(nodes, expected_supply_base=2 * 10**6)
        assert report.ok, report.render()

    def test_divergent_chains_walk_every_replica(self, mined_network):
        """When agreement fails, the double-spend walk must cover every
        replica's own main chain, not just nodes[0]'s."""
        nodes, supply = mined_network
        keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(2)]
        genesis = build_genesis_with_allocations({k.address: 10**6 for k in keys})
        # A replica on a private fork: agreement fails, so its chain must
        # be audited independently of the majority's.
        sim2 = Simulator(seed=5)
        net2 = Network(sim2)
        forked = [
            n for n in complete_topology(
                net2, 1, lambda nid: BlockchainNode("fork0", PARAMS, genesis),
                FAST_LINK,
            )
            if isinstance(n, BlockchainNode)
        ]
        forked[0].start_pow_mining(
            1.0, KeyPair.from_seed(bytes([99]) * 32).address
        )
        sim2.run(until=400)
        report = audit_blockchain(nodes + forked, expected_supply_base=supply)
        assert any(v.invariant == "agreement" for v in report.violations)

    def test_lagging_replica_detected(self, mined_network):
        """A replica that stopped hearing blocks long ago fails the
        liveness check."""
        from repro.blockchain.node import BlockchainNode as BN

        nodes, supply = mined_network
        keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(2)]
        genesis = build_genesis_with_allocations({k.address: 10**6 for k in keys})
        stale = BN("stale", PARAMS, genesis)
        report = audit_blockchain(nodes + [stale], expected_supply_base=supply)
        assert any(v.invariant == "liveness" for v in report.violations)
        assert "stale" in report.render()


class TestLatticeAudit:
    def test_healthy_testbed_passes(self):
        tb = build_nano_testbed(
            node_count=5, representative_count=2, seed=2,
            link_params=LinkParams(latency_s=0.05, jitter_s=0.01),
        )
        users = fund_accounts(tb, 3, 10**6, settle_time=2.0)
        tb.node_for(users[0].address).send_payment(
            users[0].address, users[1].address, 500
        )
        tb.simulator.run(until=tb.simulator.now + 10)
        report = audit_lattice(tb.nodes, expected_supply=10**15)
        assert report.ok, report.render()

    def test_wrong_supply_detected(self):
        tb = build_nano_testbed(node_count=3, representative_count=1, seed=3)
        report = audit_lattice(tb.nodes, expected_supply=123)
        assert not report.ok
        assert all(v.invariant == "supply" for v in report.violations)

    def test_empty_deployment_flagged(self):
        report = audit_lattice([], expected_supply=10**15)
        assert not report.ok
        assert any(v.invariant == "setup" for v in report.violations)

    def test_single_node_deployment_audits_clean(self):
        tb = build_nano_testbed(node_count=1, representative_count=1, seed=6)
        fund_accounts(tb, 2, 10**6, settle_time=2.0)
        report = audit_lattice(tb.nodes, expected_supply=10**15)
        assert report.ok, report.render()

    def test_divergent_head_detected(self):
        tb = build_nano_testbed(
            node_count=4, representative_count=2, seed=4,
            link_params=LinkParams(latency_s=0.05, jitter_s=0.01),
        )
        users = fund_accounts(tb, 2, 10**6, settle_time=2.0)
        tb.simulator.run(until=tb.simulator.now + 5)
        # Partition one node and keep transacting: its heads go stale.
        tb.nodes[-1].set_online(False)
        tb.node_for(users[0].address).send_payment(
            users[0].address, users[1].address, 77
        )
        tb.simulator.run(until=tb.simulator.now + 10)
        report = audit_lattice(tb.nodes, expected_supply=10**15)
        assert any(v.invariant == "agreement" for v in report.violations)
