"""Tests for repro.check (differential fuzzing + in-loop invariants).

The whole module is marked ``fuzz``: ``pytest -m fuzz`` runs the
deterministic smoke campaign CI's fuzz-smoke job executes.
"""

from dataclasses import replace

import pytest

from repro.check import (
    PROFILES,
    InvariantMonitor,
    ScheduleOp,
    generate_schedule,
    run_schedule,
    run_seed,
    shrink_schedule,
)
from repro.check.generator import OP_CORRUPT, OP_PAYMENT, profile_named
from repro.core.invariants import AuditReport
from repro.sim.simulator import Simulator

pytestmark = pytest.mark.fuzz


class TestGenerator:
    def test_same_seed_same_schedule(self):
        a = generate_schedule(5, PROFILES["adversarial"])
        b = generate_schedule(5, PROFILES["adversarial"])
        assert a.ops == b.ops

    def test_different_seeds_differ(self):
        a = generate_schedule(1, PROFILES["baseline"])
        b = generate_schedule(2, PROFILES["baseline"])
        assert a.ops != b.ops

    def test_ops_time_ordered(self):
        schedule = generate_schedule(3, PROFILES["adversarial"])
        times = [op.time_s for op in schedule.ops]
        assert times == sorted(times)

    def test_fault_families_are_independent_streams(self):
        """Enabling churn must not perturb the payment timeline."""
        quiet = generate_schedule(9, PROFILES["baseline"])
        churny = generate_schedule(
            9, replace(PROFILES["baseline"], churn_nodes=1)
        )
        payments = lambda s: [o for o in s.ops if o.kind == OP_PAYMENT]  # noqa: E731
        assert payments(quiet) == payments(churny)

    def test_profile_contents(self):
        conflict = generate_schedule(1, PROFILES["conflict"])
        assert any(op.kind == "double_spend" for op in conflict.ops)
        seeded = generate_schedule(1, PROFILES["seeded-violation"])
        assert sum(1 for op in seeded.ops if op.kind == OP_CORRUPT) == 1

    def test_op_roundtrips_through_dict(self):
        for op in generate_schedule(4, PROFILES["adversarial"]).ops:
            clone = ScheduleOp.from_dict(op.to_dict())
            assert clone.kind == op.kind
            assert clone.time_s == pytest.approx(op.time_s, abs=1e-6)

    def test_profile_named_overrides(self):
        profile = profile_named("baseline", audit_interval_s=2.5)
        assert profile.audit_interval_s == 2.5
        with pytest.raises(KeyError):
            profile_named("no-such-profile")


class TestMonitor:
    def _report(self, *violations):
        report = AuditReport()
        for invariant, detail in violations:
            report.add(invariant, detail)
        return report

    def test_periodic_attach_catches_violation_at_sim_time(self):
        sim = Simulator()
        bad_after = 7.0
        audit = lambda: (  # noqa: E731
            self._report(("supply", "boom")) if sim.now >= bad_after
            else self._report()
        )
        monitor = InvariantMonitor(audit, interval_s=2.0).attach(sim, until=20.0)
        sim.run(until=20.0)
        assert not monitor.ok
        assert monitor.violation.time_s == 8.0  # first tick past 7.0
        # halt_on_violation detached the task; later ticks never audited.
        assert monitor.audits_run == 4

    def test_eventual_violations_tolerated_until_strict(self):
        monitor = InvariantMonitor(
            lambda: self._report(("agreement", "heads diverge"))
        )
        assert monitor.check_now() is None
        assert monitor.ok
        assert monitor.transient_disagreements == 1
        assert monitor.check_now(strict=True) is not None
        assert not monitor.ok

    def test_safety_violation_filters_out_eventual_noise(self):
        monitor = InvariantMonitor(
            lambda: self._report(("agreement", "transient"),
                                 ("supply", "real"))
        )
        record = monitor.check_now()
        assert record is not None
        assert [v.invariant for v in record.violations] == ["supply"]

    def test_none_report_counts_as_pass(self):
        monitor = InvariantMonitor(lambda: None)
        assert monitor.check_now(strict=True) is None
        assert monitor.audits_run == 1

    def test_dump_evidence(self, tmp_path):
        monitor = InvariantMonitor(lambda: self._report(("supply", "boom")))
        monitor.check_now()
        path = tmp_path / "evidence.jsonl"
        assert monitor.dump_evidence(str(path)) == 1
        assert "supply" in path.read_text()


class TestRunner:
    def test_baseline_clean_on_both_paradigms(self):
        outcome = run_seed(1, PROFILES["baseline"])
        assert outcome.ok, [r.violation.render() for r in outcome.failing()]
        assert {r.paradigm for r in outcome.results} == {"blockchain", "dag"}
        for result in outcome.results:
            assert result.audits_run > 1  # the monitor actually ran in-loop
            assert result.ops_applied > 0

    def test_replay_oracle_same_fingerprint(self):
        first = run_seed(2, PROFILES["conflict"])
        second = run_seed(2, PROFILES["conflict"])
        for a, b in zip(first.results, second.results):
            assert a.fingerprint == b.fingerprint

    def test_conflicts_resolved_without_violation(self):
        outcome = run_seed(3, PROFILES["conflict"])
        assert outcome.ok, [r.violation.render() for r in outcome.failing()]

    @pytest.mark.parametrize("paradigm", ["blockchain", "dag"])
    def test_seeded_corruption_caught_in_loop(self, paradigm):
        profile = PROFILES["seeded-violation"]
        schedule = generate_schedule(1, profile)
        result = run_schedule(schedule, paradigm)
        assert result.violation is not None
        assert any(v.invariant == "supply"
                   for v in result.violation.violations)
        # Caught in-loop: at an audit tick after the corruption landed,
        # well before the run's end (times are absolute sim time; setup
        # advances the clock before the schedule replays).
        caught_after = result.violation.time_s - result.started_at_s
        assert profile.corrupt_at_s <= caught_after
        assert caught_after <= profile.corrupt_at_s + 2 * profile.audit_interval_s
        assert result.violation.evidence  # ring buffer captured


class TestShrink:
    def test_minimizes_seeded_violation_to_corrupt_op(self):
        schedule = generate_schedule(1, PROFILES["seeded-violation"])
        assert len(schedule.ops) > 1
        result = shrink_schedule(schedule, "blockchain")
        assert result is not None
        assert [op.kind for op in result.schedule.ops] == [OP_CORRUPT]
        assert result.original_ops == len(schedule.ops)

    def test_healthy_schedule_returns_none(self):
        schedule = generate_schedule(1, PROFILES["baseline"])
        assert shrink_schedule(schedule, "dag") is None


class TestCli:
    def test_fuzz_smoke_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--seeds", "2", "--check-determinism"]) == 0
        assert "0/2 seeds with violations" in capsys.readouterr().out

    def test_fuzz_seeded_violation_exits_nonzero_with_artifact(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        code = main([
            "fuzz", "--seeds", "1", "--profile", "seeded-violation",
            "--paradigm", "blockchain", "--shrink",
            "--artifact-dir", str(tmp_path),
        ])
        assert code == 1
        artifacts = list(tmp_path.glob("fuzz-*.json"))
        assert len(artifacts) == 1
        assert "[supply]" in capsys.readouterr().out

    def test_fuzz_unknown_profile_rejected(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--profile", "bogus"]) == 2
