"""Tests for repro.crypto.keys (simulated signatures)."""

import random

import pytest

from repro.common.types import Address
from repro.crypto.hashing import sha256
from repro.crypto.keys import (
    PUBLIC_KEY_SIZE,
    SIGNATURE_SIZE,
    KeyPair,
    address_of,
    verify_signature,
)


class TestKeyGeneration:
    def test_deterministic_from_rng(self):
        a = KeyPair.generate(random.Random(1))
        b = KeyPair.generate(random.Random(1))
        assert a.public_key == b.public_key

    def test_distinct_seeds_distinct_keys(self):
        rng = random.Random(0)
        assert KeyPair.generate(rng).public_key != KeyPair.generate(rng).public_key

    def test_from_seed_requires_32_bytes(self):
        with pytest.raises(ValueError):
            KeyPair.from_seed(b"short")

    def test_public_key_size(self):
        kp = KeyPair.generate(random.Random(2))
        assert len(kp.public_key) == PUBLIC_KEY_SIZE

    def test_address_derivation_stable(self):
        kp = KeyPair.generate(random.Random(3))
        assert kp.address == address_of(kp.public_key)
        assert isinstance(kp.address, Address)


class TestSignatures:
    def test_sign_verify_round_trip(self):
        kp = KeyPair.generate(random.Random(4))
        sig = kp.sign(b"message")
        assert verify_signature(kp.public_key, b"message", sig)

    def test_signature_size(self):
        kp = KeyPair.generate(random.Random(5))
        assert len(kp.sign(b"m")) == SIGNATURE_SIZE

    def test_tampered_message_fails(self):
        kp = KeyPair.generate(random.Random(6))
        sig = kp.sign(b"message")
        assert not verify_signature(kp.public_key, b"messagE", sig)

    def test_tampered_signature_fails(self):
        kp = KeyPair.generate(random.Random(7))
        sig = bytearray(kp.sign(b"m"))
        sig[0] ^= 0xFF
        assert not verify_signature(kp.public_key, b"m", bytes(sig))

    def test_wrong_key_fails(self):
        rng = random.Random(8)
        a, b = KeyPair.generate(rng), KeyPair.generate(rng)
        assert not verify_signature(b.public_key, b"m", a.sign(b"m"))

    def test_unknown_public_key_fails(self):
        assert not verify_signature(b"\x00" * 32, b"m", b"\x00" * 64)

    def test_wrong_length_signature_fails(self):
        kp = KeyPair.generate(random.Random(9))
        assert not verify_signature(kp.public_key, b"m", b"short")

    def test_sign_hash(self):
        kp = KeyPair.generate(random.Random(10))
        digest = sha256(b"payload")
        sig = kp.sign_hash(digest)
        assert verify_signature(kp.public_key, bytes(digest), sig)

    def test_signatures_deterministic(self):
        kp = KeyPair.generate(random.Random(11))
        assert kp.sign(b"m") == kp.sign(b"m")
