"""Tests for repro.crypto.hashing."""

import hashlib

from repro.common.types import Hash
from repro.crypto.hashing import hash_concat, hash_to_int, sha256, sha256d


class TestSha256:
    def test_matches_stdlib(self):
        assert bytes(sha256(b"abc")) == hashlib.sha256(b"abc").digest()

    def test_double_hash(self):
        inner = hashlib.sha256(b"abc").digest()
        assert bytes(sha256d(b"abc")) == hashlib.sha256(inner).digest()

    def test_returns_hash_type(self):
        assert isinstance(sha256(b""), Hash)

    def test_deterministic(self):
        assert sha256(b"x") == sha256(b"x")

    def test_distinct_inputs_distinct_digests(self):
        assert sha256(b"a") != sha256(b"b")


class TestHashConcat:
    def test_order_matters(self):
        a, b = sha256(b"a"), sha256(b"b")
        assert hash_concat(a, b) != hash_concat(b, a)

    def test_is_sha256d_of_concatenation(self):
        a, b = sha256(b"a"), sha256(b"b")
        assert hash_concat(a, b) == sha256d(bytes(a) + bytes(b))


class TestHashToInt:
    def test_zero(self):
        assert hash_to_int(Hash.zero()) == 0

    def test_max(self):
        assert hash_to_int(Hash(b"\xff" * 32)) == 2**256 - 1

    def test_big_endian(self):
        assert hash_to_int(Hash(b"\x00" * 31 + b"\x01")) == 1
