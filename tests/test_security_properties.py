"""Security-oriented property tests: tampered proofs and conserved value."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import KeyPair
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.trie import MerklePatriciaTrie, TrieProof
from repro.crypto.hashing import sha256d


class TestMerkleProofTampering:
    @settings(max_examples=40, deadline=None)
    @given(
        leaf_count=st.integers(min_value=2, max_value=32),
        data=st.data(),
    )
    def test_any_single_bit_flip_breaks_the_proof(self, leaf_count, data):
        leaves = [sha256d(bytes([i])) for i in range(leaf_count)]
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=leaf_count - 1))
        proof = tree.proof(index)
        step_index = data.draw(
            st.integers(min_value=0, max_value=len(proof.steps) - 1)
        )
        byte_index = data.draw(st.integers(min_value=0, max_value=31))
        bit = data.draw(st.integers(min_value=0, max_value=7))

        from repro.common.types import Hash
        from repro.crypto.merkle import MerkleProofStep

        victim = proof.steps[step_index]
        raw = bytearray(bytes(victim.sibling))
        raw[byte_index] ^= 1 << bit
        tampered_steps = list(proof.steps)
        tampered_steps[step_index] = MerkleProofStep(
            sibling=Hash(bytes(raw)), sibling_is_left=victim.sibling_is_left
        )
        tampered = MerkleProof(leaf=proof.leaf, steps=tampered_steps)
        assert not tampered.verify(tree.root)

    @settings(max_examples=20, deadline=None)
    @given(leaf_count=st.integers(min_value=2, max_value=16), data=st.data())
    def test_proof_not_transferable_between_leaves(self, leaf_count, data):
        leaves = [sha256d(bytes([i])) for i in range(leaf_count)]
        tree = MerkleTree(leaves)
        i = data.draw(st.integers(min_value=0, max_value=leaf_count - 1))
        j = data.draw(
            st.integers(min_value=0, max_value=leaf_count - 1).filter(lambda x: x != i)
        )
        stolen = MerkleProof(leaf=leaves[j], steps=tree.proof(i).steps)
        assert not stolen.verify(tree.root)


class TestTrieProofTampering:
    def build(self, entries=20):
        trie = MerklePatriciaTrie()
        for i in range(entries):
            trie.put(bytes([i]), bytes([i * 2 % 256]))
        return trie

    def test_value_substitution_detected(self):
        trie = self.build()
        proof = trie.prove(bytes([5]))
        forged = TrieProof(key=proof.key, value=b"forged", nodes=proof.nodes)
        assert not MerklePatriciaTrie.verify_proof(trie.root_hash, forged)

    def test_key_substitution_detected(self):
        trie = self.build()
        proof = trie.prove(bytes([5]))
        forged = TrieProof(key=bytes([6]), value=proof.value, nodes=proof.nodes)
        assert not MerklePatriciaTrie.verify_proof(trie.root_hash, forged)

    def test_node_mutation_detected(self):
        trie = self.build()
        proof = trie.prove(bytes([5]))
        mutated_nodes = list(proof.nodes)
        raw = bytearray(mutated_nodes[0])
        raw[len(raw) // 2] ^= 0xFF
        mutated_nodes[0] = bytes(raw)
        forged = TrieProof(key=proof.key, value=proof.value, nodes=tuple(mutated_nodes))
        assert not MerklePatriciaTrie.verify_proof(trie.root_hash, forged)

    def test_truncated_proof_detected(self):
        trie = self.build()
        proof = trie.prove(bytes([5]))
        if len(proof.nodes) > 1:
            forged = TrieProof(key=proof.key, value=proof.value, nodes=proof.nodes[:1])
            assert not MerklePatriciaTrie.verify_proof(trie.root_hash, forged)


class TestChannelConservation:
    @settings(max_examples=20, deadline=None)
    @given(
        payments=st.lists(
            st.tuples(st.integers(min_value=0, max_value=5),
                      st.integers(min_value=0, max_value=5),
                      st.integers(min_value=1, max_value=50)),
            min_size=1, max_size=40,
        )
    )
    def test_hub_network_conserves_value(self, payments):
        """Property: any routable payment sequence settles to exactly the
        deposited total; unroutable ones change nothing."""
        from repro.common.errors import ChannelError
        from repro.scaling.channels import ChannelNetwork

        rng = random.Random(99)
        network = ChannelNetwork()
        hub = KeyPair.generate(rng)
        network.register(hub)
        clients = [KeyPair.generate(rng) for _ in range(6)]
        for client in clients:
            network.register(client)
            network.open_channel(client.address, hub.address, 200, 200)
        for a, b, amount in payments:
            if a == b:
                continue
            try:
                network.send(clients[a].address, clients[b].address, amount)
            except ChannelError:
                pass  # insufficient capacity: nothing may change
        settled = network.close_all()
        assert sum(settled.values()) == 6 * 400
