"""Tests for repro.net (links, nodes, gossip network)."""

import random

import pytest

from repro.net.link import FAST_LINK, LinkParams
from repro.net.message import MESSAGE_OVERHEAD_BYTES, Message
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.topology import (
    complete_topology,
    line_topology,
    random_regular_topology,
    small_world_topology,
)
from repro.sim.simulator import Simulator


class Recorder(NetworkNode):
    """Test node that remembers everything it receives."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def handle_message(self, sender_id, message):
        self.received.append((sender_id, message.payload))


def make_message(payload="x", size=100, dedup=None):
    return Message(kind="test", payload=payload, size_bytes=size, dedup_key=dedup)


class TestLinkParams:
    def test_delay_includes_transmission(self):
        link = LinkParams(latency_s=1.0, jitter_s=0.0, bandwidth_bps=8_000.0)
        msg = make_message(size=1000 - MESSAGE_OVERHEAD_BYTES)
        delay = link.delivery_delay(msg, random.Random(0))
        assert delay == pytest.approx(1.0 + 1.0)  # 1000 B over 1 kB/s

    def test_loss(self):
        link = LinkParams(loss_probability=0.999999)
        lost = sum(
            1
            for i in range(50)
            if link.delivery_delay(make_message(), random.Random(i)) is None
        )
        assert lost == 50

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinkParams(latency_s=-1)
        with pytest.raises(ValueError):
            LinkParams(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LinkParams(loss_probability=1.5)
        with pytest.raises(ValueError):
            LinkParams(loss_probability=-0.1)

    def test_total_loss_is_a_valid_blackhole(self):
        """A 100%-loss link is a legitimate fault-injection config."""
        link = LinkParams(loss_probability=1.0)
        for i in range(20):
            assert link.delivery_delay(make_message(), random.Random(i)) is None

    def test_jitter_bounded(self):
        link = LinkParams(latency_s=1.0, jitter_s=0.5, bandwidth_bps=1e12)
        rng = random.Random(1)
        for _ in range(100):
            delay = link.delivery_delay(make_message(size=0), rng)
            assert 1.0 <= delay <= 1.5 + 1e-9


class TestDirectTransmission:
    def test_point_to_point(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Recorder("a"), Recorder("b")
        net.add_node(a)
        net.add_node(b)
        net.connect("a", "b", FAST_LINK)
        a.send("b", make_message("hello"))
        sim.run()
        assert b.received == [("a", "hello")]

    def test_unknown_link_raises(self):
        sim = Simulator()
        net = Network(sim)
        net.add_node(Recorder("a"))
        net.add_node(Recorder("b"))
        with pytest.raises(KeyError):
            net.transmit("a", "b", make_message())

    def test_duplicate_node_rejected(self):
        net = Network(Simulator())
        net.add_node(Recorder("a"))
        with pytest.raises(ValueError):
            net.add_node(Recorder("a"))

    def test_offline_node_drops_traffic(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Recorder("a"), Recorder("b")
        net.add_node(a)
        net.add_node(b)
        net.connect("a", "b")
        b.set_online(False)
        a.send("b", make_message())
        sim.run()
        assert b.received == []

    def test_traffic_counters(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Recorder("a"), Recorder("b")
        net.add_node(a)
        net.add_node(b)
        net.connect("a", "b", FAST_LINK)
        a.send("b", make_message(size=100))
        sim.run()
        assert a.bytes_sent == 100 + MESSAGE_OVERHEAD_BYTES
        assert b.bytes_received == 100 + MESSAGE_OVERHEAD_BYTES
        assert net.messages_delivered == 1


class TestGossip:
    def test_flood_reaches_all_nodes(self):
        sim = Simulator()
        net = Network(sim)
        nodes = line_topology(net, 10, Recorder, FAST_LINK)
        nodes[0].broadcast(make_message("flood"))
        sim.run()
        for node in nodes[1:]:
            assert ("flood" in [p for _, p in node.received])

    def test_each_node_receives_once(self):
        sim = Simulator()
        net = Network(sim)
        nodes = complete_topology(net, 6, Recorder, FAST_LINK)
        nodes[0].broadcast(make_message("once"))
        sim.run()
        for node in nodes[1:]:
            assert len(node.received) == 1

    def test_dedup_key_suppresses_second_flood(self):
        from repro.common.types import Hash

        sim = Simulator()
        net = Network(sim)
        nodes = complete_topology(net, 4, Recorder, FAST_LINK)
        key = Hash(b"\x05" * 32)
        nodes[0].broadcast(make_message("first", dedup=key))
        sim.run()
        nodes[1].broadcast(make_message("second", dedup=key))
        sim.run()
        # "second" has the same gossip identity, so nobody sees it.
        for node in nodes:
            assert "second" not in [p for _, p in node.received]

    def test_propagation_takes_hops_on_a_line(self):
        sim = Simulator()
        net = Network(sim)
        link = LinkParams(latency_s=1.0, jitter_s=0.0, bandwidth_bps=1e12)
        nodes = line_topology(net, 5, Recorder, link)
        nodes[0].broadcast(make_message("hop"))
        sim.run()
        # Last node is 4 hops away at 1 s latency each.
        assert sim.now == pytest.approx(4.0, abs=0.01)


class TestPartitions:
    def test_partition_blocks_cross_traffic(self):
        sim = Simulator()
        net = Network(sim)
        nodes = complete_topology(net, 4, Recorder, FAST_LINK)
        net.partition([["n0", "n1"], ["n2", "n3"]])
        nodes[0].broadcast(make_message("partitioned"))
        sim.run()
        assert [p for _, p in nodes[1].received] == ["partitioned"]
        assert nodes[2].received == []
        assert nodes[3].received == []

    def test_heal_restores_traffic(self):
        sim = Simulator()
        net = Network(sim)
        nodes = complete_topology(net, 4, Recorder, FAST_LINK)
        net.partition([["n0", "n1"], ["n2", "n3"]])
        net.heal()
        nodes[0].broadcast(make_message("healed"))
        sim.run()
        assert all(len(n.received) == 1 for n in nodes[1:])

    def test_gossip_recovers_after_heal(self):
        """Regression: a message gossiped *during* a partition must still
        reach the far side once the partition heals — the old fabric
        marked it seen at scheduling time and never re-flooded it."""
        sim = Simulator()
        net = Network(sim)
        nodes = complete_topology(net, 4, Recorder, FAST_LINK)
        net.partition([["n0", "n1"], ["n2", "n3"]])
        nodes[0].broadcast(make_message("survivor"))
        sim.run()
        # The far side saw nothing while partitioned.
        assert nodes[2].received == [] and nodes[3].received == []
        net.heal()
        sim.run()
        for node in nodes[1:]:
            assert [p for _, p in node.received] == ["survivor"]
        # Accounting: every scheduled attempt resolved exactly once.
        assert net.tracer.in_flight == 0
        assert net.tracer.scheduled == net.tracer.delivered + net.tracer.dropped

    def test_regossip_after_heal_reaches_everyone_once(self):
        """Partition, heal, then gossip a *new* message: full delivery,
        no duplicates (the ISSUE's partition/heal/re-gossip regression)."""
        sim = Simulator()
        net = Network(sim)
        nodes = complete_topology(net, 6, Recorder, FAST_LINK)
        net.partition([["n0", "n1", "n2"], ["n3", "n4", "n5"]])
        nodes[0].broadcast(make_message("during"))
        sim.run()
        net.heal()
        nodes[3].broadcast(make_message("after"))
        sim.run()
        for node in nodes:
            payloads = [p for _, p in node.received]
            assert payloads.count("after") == (0 if node is nodes[3] else 1)
            # "during" also recovered everywhere after heal.
            expected_during = 0 if node is nodes[0] else 1
            assert payloads.count("during") == expected_during
        assert net.pending_retries() == 0

    def test_gossip_retries_through_heavy_loss(self):
        """80% per-hop loss on a line: retransmission still gets the
        message across every hop (given a budget that makes per-hop
        failure odds ~0.8^25 ≈ 4e-3)."""
        from repro.net.network import RetransmitPolicy

        sim = Simulator()
        net = Network(sim, retransmit=RetransmitPolicy(
            base_delay_s=0.05, max_delay_s=0.5, max_attempts=25))
        lossy = LinkParams(latency_s=0.01, jitter_s=0.0, bandwidth_bps=1e9,
                           loss_probability=0.8)
        nodes = line_topology(net, 4, Recorder, lossy)
        nodes[0].broadcast(make_message("persist"))
        sim.run()
        for node in nodes[1:]:
            assert [p for _, p in node.received] == ["persist"]
        assert net.tracer.retransmits > 0

    def test_offline_node_catches_up_on_restart(self):
        """Gossip parked while a node was offline is retried when it
        comes back (NetworkNode.set_online kicks the retry queue)."""
        sim = Simulator()
        net = Network(sim)
        nodes = complete_topology(net, 3, Recorder, FAST_LINK)
        nodes[2].set_online(False)
        nodes[0].broadcast(make_message("missed"))
        sim.run()
        assert nodes[2].received == []
        nodes[2].set_online(True)
        sim.run()
        assert [p for _, p in nodes[2].received] == ["missed"]

    def test_heal_kick_never_double_delivers_seen_message(self):
        """Regression: a retry timer can outlive the message it carries
        when the destination learns it out-of-band (another gossip path,
        state sync) while the timer is pending.  A heal-time
        ``kick_retries`` must drop that timer instead of re-attempting
        delivery — the retry-timer pass carries the same seen-guard as
        the parked pass, and it must also release the stale inflight
        ownership claim so future gossip of the key is not suppressed."""
        from repro.net.network import RetransmitPolicy

        sim = Simulator()
        net = Network(sim, retransmit=RetransmitPolicy(
            base_delay_s=10.0, max_delay_s=10.0, max_attempts=5))
        nodes = complete_topology(net, 2, Recorder, FAST_LINK)
        # Every a->b attempt loses, so a retry timer stays pending.
        net.set_link("n0", "n1", LinkParams(
            latency_s=0.01, jitter_s=0.0, bandwidth_bps=1e9,
            loss_probability=1.0), bidirectional=False)
        message = make_message("once")
        nodes[0].broadcast(message)
        sim.run(until=1.0)
        assert net.pending_retries() == 1
        # n1 now receives the message via another path (out of band).
        key = message.gossip_key()
        net._seen["n1"].add(key)
        net.kick_retries()
        sim.run()
        # The kick dropped the dead timer: no delivery, no new retries,
        # and the inflight claim was released.
        assert nodes[1].received == []
        assert net.pending_retries() == 0
        assert key not in net._inflight["n1"]
        assert net.tracer.in_flight == 0

    def test_seen_cache_is_bounded(self):
        sim = Simulator()
        net = Network(sim, seen_cache_size=8)
        nodes = complete_topology(net, 2, Recorder, FAST_LINK)
        for i in range(100):
            nodes[0].broadcast(make_message(f"m{i}"))
            sim.run()
        assert len(nodes[1].received) == 100
        assert len(net._seen["n1"]) <= 8


class TestReliableTransmit:
    def test_retries_until_delivered(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Recorder("a"), Recorder("b")
        net.add_node(a)
        net.add_node(b)
        net.connect("a", "b", LinkParams(latency_s=0.01, jitter_s=0.0,
                                         bandwidth_bps=1e9,
                                         loss_probability=0.8))
        a.send_reliable("b", make_message("tenacious"))
        sim.run()
        assert [p for _, p in b.received] == ["tenacious"]

    def test_gives_up_after_attempt_budget(self):
        from repro.net.network import RetransmitPolicy

        sim = Simulator()
        net = Network(sim, retransmit=RetransmitPolicy(max_attempts=3))
        a, b = Recorder("a"), Recorder("b")
        net.add_node(a)
        net.add_node(b)
        net.connect("a", "b", LinkParams(loss_probability=1.0))
        a.send_reliable("b", make_message("doomed"))
        sim.run()
        assert b.received == []
        assert net.tracer.gave_up == 1
        assert net.tracer.scheduled == 3


class TestTopologies:
    def test_complete_edge_count(self):
        net = Network(Simulator())
        complete_topology(net, 5, Recorder)
        assert all(len(net.neighbors(f"n{i}")) == 4 for i in range(5))

    def test_random_regular_degree(self):
        net = Network(Simulator())
        random_regular_topology(net, 10, 4, Recorder, seed=1)
        assert all(len(net.neighbors(f"n{i}")) == 4 for i in range(10))

    def test_random_regular_validates(self):
        with pytest.raises(ValueError):
            random_regular_topology(Network(Simulator()), 4, 4, Recorder)

    def test_small_world_connected(self):
        sim = Simulator()
        net = Network(sim)
        nodes = small_world_topology(net, 20, Recorder, link_params=FAST_LINK, seed=2)
        nodes[0].broadcast(make_message("sw"))
        sim.run()
        assert all(len(n.received) == 1 for n in nodes[1:])

    def test_complete_requires_positive_count(self):
        with pytest.raises(ValueError):
            complete_topology(Network(Simulator()), 0, Recorder)
