"""Tests for repro.common.types."""

import pytest

from repro.common.types import ADDRESS_SIZE, Address, Hash, as_hash


class TestHash:
    def test_requires_exactly_32_bytes(self):
        with pytest.raises(ValueError):
            Hash(b"short")
        with pytest.raises(ValueError):
            Hash(b"x" * 33)

    def test_rejects_non_bytes(self):
        with pytest.raises(ValueError):
            Hash("00" * 32)  # type: ignore[arg-type]

    def test_zero_is_all_zero(self):
        assert Hash.zero().value == b"\x00" * 32
        assert Hash.zero().is_zero()

    def test_nonzero_hash_is_not_zero(self):
        assert not Hash(b"\x01" + b"\x00" * 31).is_zero()

    def test_hex_round_trip(self):
        h = Hash(bytes(range(32)))
        assert Hash.from_hex(h.hex) == h

    def test_short_prefix(self):
        h = Hash(bytes(range(32)))
        assert h.short(4) == h.hex[:4]

    def test_hashable_and_equal(self):
        a = Hash(b"\x07" * 32)
        b = Hash(b"\x07" * 32)
        assert a == b
        assert len({a, b}) == 1

    def test_ordering_is_bytewise(self):
        lo = Hash(b"\x00" * 32)
        hi = Hash(b"\xff" + b"\x00" * 31)
        assert lo < hi

    def test_bytes_conversion(self):
        h = Hash(b"\x09" * 32)
        assert bytes(h) == b"\x09" * 32


class TestAddress:
    def test_requires_exactly_20_bytes(self):
        with pytest.raises(ValueError):
            Address(b"x" * 19)
        with pytest.raises(ValueError):
            Address(b"x" * 21)

    def test_hex_round_trip(self):
        a = Address(bytes(range(ADDRESS_SIZE)))
        assert Address.from_hex(a.hex) == a

    def test_zero(self):
        assert Address.zero().value == b"\x00" * 20

    def test_distinct_addresses_unequal(self):
        assert Address(b"\x01" * 20) != Address(b"\x02" * 20)


class TestAsHash:
    def test_passes_hash_through(self):
        h = Hash(b"\x03" * 32)
        assert as_hash(h) is h

    def test_wraps_raw_bytes(self):
        assert as_hash(b"\x04" * 32) == Hash(b"\x04" * 32)
