"""Tests for repro.dag.voting (Open Representative Voting)."""

import pytest

from repro.common.errors import ValidationError
from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.dag.representatives import RepresentativeLedger
from repro.dag.voting import Election, ElectionManager, Vote


def make_vote(rep_keypair, block_hash, sequence=1):
    unsigned = Vote(
        representative=rep_keypair.address,
        block_hash=block_hash,
        sequence=sequence,
        public_key=rep_keypair.public_key,
    )
    return Vote(
        representative=unsigned.representative,
        block_hash=unsigned.block_hash,
        sequence=unsigned.sequence,
        public_key=unsigned.public_key,
        signature=rep_keypair.sign(unsigned.signed_payload()),
    )


@pytest.fixture
def weighted_world(rng):
    """Three reps with weights 50/30/20, all online."""
    reps = [KeyPair.generate(rng) for _ in range(3)]
    accounts = [KeyPair.generate(rng) for _ in range(3)]
    ledger = RepresentativeLedger()
    for account, rep, weight in zip(accounts, reps, (50, 30, 20)):
        ledger.set_account(account.address, weight, rep.address)
        ledger.set_online(rep.address)
    return ledger, reps


BLOCK_A = Hash(b"\xaa" * 32)
BLOCK_B = Hash(b"\xbb" * 32)
ACCOUNT = None  # filled per test


class TestVote:
    def test_signed_vote_verifies(self, rng):
        rep = KeyPair.generate(rng)
        assert make_vote(rep, BLOCK_A).verify()

    def test_unsigned_vote_fails(self, rng):
        rep = KeyPair.generate(rng)
        vote = Vote(rep.address, BLOCK_A, 1, rep.public_key)
        assert not vote.verify()

    def test_tampered_vote_fails(self, rng):
        rep = KeyPair.generate(rng)
        vote = make_vote(rep, BLOCK_A)
        from dataclasses import replace

        assert not replace(vote, block_hash=BLOCK_B).verify()


class TestElection:
    def test_weighted_tally(self, weighted_world, rng):
        ledger, reps = weighted_world
        account = KeyPair.generate(rng).address
        election = Election(root=(account, Hash.zero()))
        election.add_candidate(BLOCK_A)
        election.add_candidate(BLOCK_B)
        election.record(make_vote(reps[0], BLOCK_A))
        election.record(make_vote(reps[1], BLOCK_B))
        election.record(make_vote(reps[2], BLOCK_B))
        totals = election.tally(ledger)
        assert totals[BLOCK_A] == 50 and totals[BLOCK_B] == 50

    def test_quorum_decides_winner(self, weighted_world, rng):
        ledger, reps = weighted_world
        account = KeyPair.generate(rng).address
        election = Election(root=(account, Hash.zero()))
        election.add_candidate(BLOCK_A)
        election.add_candidate(BLOCK_B)
        election.record(make_vote(reps[0], BLOCK_A))  # 50 <= 50: no quorum
        assert election.try_conclude(ledger, 0.5) is None
        election.record(make_vote(reps[2], BLOCK_A))  # 70 > 50: quorum
        assert election.try_conclude(ledger, 0.5) == BLOCK_A

    def test_rep_can_switch_with_higher_sequence(self, weighted_world, rng):
        ledger, reps = weighted_world
        account = KeyPair.generate(rng).address
        election = Election(root=(account, Hash.zero()))
        election.add_candidate(BLOCK_A)
        election.add_candidate(BLOCK_B)
        election.record(make_vote(reps[0], BLOCK_A, sequence=1))
        election.record(make_vote(reps[0], BLOCK_B, sequence=2))
        assert election.tally(ledger)[BLOCK_B] == 50

    def test_stale_sequence_ignored(self, weighted_world, rng):
        ledger, reps = weighted_world
        account = KeyPair.generate(rng).address
        election = Election(root=(account, Hash.zero()))
        election.add_candidate(BLOCK_A)
        election.add_candidate(BLOCK_B)
        election.record(make_vote(reps[0], BLOCK_B, sequence=5))
        assert not election.record(make_vote(reps[0], BLOCK_A, sequence=4))
        assert election.tally(ledger)[BLOCK_B] == 50

    def test_vote_for_unknown_candidate_rejected(self, weighted_world, rng):
        ledger, reps = weighted_world
        account = KeyPair.generate(rng).address
        election = Election(root=(account, Hash.zero()))
        election.add_candidate(BLOCK_A)
        with pytest.raises(ValidationError):
            election.record(make_vote(reps[0], BLOCK_B))


class TestElectionManager:
    def test_conflict_resolution_by_weight(self, weighted_world, rng):
        """Section III-B: "the winning transaction is the one that gained
        the most votes with regards to the voters' weight"."""
        ledger, reps = weighted_world
        manager = ElectionManager(ledger, quorum_fraction=0.5)
        account = KeyPair.generate(rng).address
        root = Hash(b"\x01" * 32)
        manager.open_election(account, root, [BLOCK_A, BLOCK_B])
        assert manager.record_conflict_vote(account, root, make_vote(reps[1], BLOCK_B)) is None
        winner = manager.record_conflict_vote(account, root, make_vote(reps[0], BLOCK_B))
        assert winner == BLOCK_B  # 80 > 50% of 100
        assert manager.elections_concluded == 1

    def test_election_reuse_and_extension(self, weighted_world, rng):
        ledger, reps = weighted_world
        manager = ElectionManager(ledger, 0.5)
        account = KeyPair.generate(rng).address
        root = Hash(b"\x01" * 32)
        e1 = manager.open_election(account, root, [BLOCK_A])
        e2 = manager.open_election(account, root, [BLOCK_B])
        assert e1 is e2
        assert e1.candidates == {BLOCK_A, BLOCK_B}
        assert manager.elections_started == 1

    def test_vote_without_election_rejected(self, weighted_world, rng):
        ledger, reps = weighted_world
        manager = ElectionManager(ledger, 0.5)
        with pytest.raises(ValidationError):
            manager.record_conflict_vote(
                KeyPair.generate(rng).address, Hash.zero(), make_vote(reps[0], BLOCK_A)
            )


class TestConfirmation:
    def test_quorum_confirms(self, weighted_world):
        """Section IV-B: confirmed at majority of online weight."""
        ledger, reps = weighted_world
        manager = ElectionManager(ledger, 0.5)
        assert not manager.record_observation_vote(make_vote(reps[0], BLOCK_A))  # 50
        assert manager.record_observation_vote(make_vote(reps[1], BLOCK_A))  # 80 > 50
        assert manager.is_confirmed(BLOCK_A)
        assert manager.confirmed_count() == 1

    def test_confidence_fraction(self, weighted_world):
        ledger, reps = weighted_world
        manager = ElectionManager(ledger, 0.5)
        manager.record_observation_vote(make_vote(reps[2], BLOCK_A))
        assert manager.confirmation_confidence(BLOCK_A) == pytest.approx(0.2)

    def test_duplicate_votes_not_double_counted(self, weighted_world):
        ledger, reps = weighted_world
        manager = ElectionManager(ledger, 0.5)
        manager.record_observation_vote(make_vote(reps[0], BLOCK_A, sequence=1))
        manager.record_observation_vote(make_vote(reps[0], BLOCK_A, sequence=1))
        assert manager.confirmation_weight(BLOCK_A) == 50

    def test_offline_weight_excluded_from_quorum_base(self, weighted_world):
        ledger, reps = weighted_world
        ledger.set_online(reps[0].address, online=False)  # 50 offline
        manager = ElectionManager(ledger, 0.5)
        # Online base is 50; rep1's 30 > 25 confirms alone.
        assert manager.record_observation_vote(make_vote(reps[1], BLOCK_A))
