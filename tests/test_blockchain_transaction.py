"""Tests for repro.blockchain.transaction."""

import pytest

from repro.common.errors import ValidationError
from repro.common.types import Address, Hash
from repro.crypto.keys import KeyPair
from repro.blockchain.transaction import (
    AccountTransaction,
    Transaction,
    TxInput,
    TxOutput,
    build_transaction,
    make_coinbase,
    sign_account_transaction,
)


def alice_bob(rng):
    return KeyPair.generate(rng), KeyPair.generate(rng)


class TestTxOutput:
    def test_negative_amount_rejected(self):
        with pytest.raises(ValidationError):
            TxOutput(amount=-1, recipient=Address.zero())

    def test_serialization_length(self):
        out = TxOutput(amount=5, recipient=Address.zero())
        assert len(out.serialize()) == 8 + 20


class TestCoinbase:
    def test_is_coinbase(self, rng):
        cb = make_coinbase(KeyPair.generate(rng).address, 50)
        assert cb.is_coinbase
        assert cb.inputs[0].is_coinbase

    def test_nonce_differentiates_txids(self, rng):
        addr = KeyPair.generate(rng).address
        assert make_coinbase(addr, 50, nonce=1).txid != make_coinbase(addr, 50, nonce=2).txid

    def test_recipient_differentiates_txids(self, rng):
        a, b = alice_bob(rng)
        assert make_coinbase(a.address, 50).txid != make_coinbase(b.address, 50).txid


class TestBuildTransaction:
    def test_simple_payment_with_change(self, rng):
        alice, bob = alice_bob(rng)
        funding = make_coinbase(alice.address, 100)
        tx = build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 30, fee=5)
        assert tx.total_output() == 95  # 30 to bob + 65 change
        amounts = {o.recipient: o.amount for o in tx.outputs}
        assert amounts[bob.address] == 30
        assert amounts[alice.address] == 65

    def test_exact_spend_no_change(self, rng):
        alice, bob = alice_bob(rng)
        funding = make_coinbase(alice.address, 100)
        tx = build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 100)
        assert len(tx.outputs) == 1

    def test_signatures_verify(self, rng):
        alice, bob = alice_bob(rng)
        funding = make_coinbase(alice.address, 100)
        tx = build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 10)
        assert tx.verify_input_signatures()

    def test_insufficient_funds(self, rng):
        alice, bob = alice_bob(rng)
        funding = make_coinbase(alice.address, 100)
        with pytest.raises(ValidationError):
            build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 200)

    def test_fee_counted_against_funds(self, rng):
        alice, bob = alice_bob(rng)
        funding = make_coinbase(alice.address, 100)
        with pytest.raises(ValidationError):
            build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 100, fee=1)

    def test_multi_input_selection(self, rng):
        alice, bob = alice_bob(rng)
        f1 = make_coinbase(alice.address, 60, nonce=1)
        f2 = make_coinbase(alice.address, 60, nonce=2)
        tx = build_transaction(
            alice, [(f1.txid, 0, 60), (f2.txid, 0, 60)], bob.address, 100
        )
        assert len(tx.inputs) == 2

    def test_rejects_nonpositive_amount(self, rng):
        alice, bob = alice_bob(rng)
        with pytest.raises(ValidationError):
            build_transaction(alice, [], bob.address, 0)

    def test_tampering_invalidates_signature(self, rng):
        alice, bob = alice_bob(rng)
        funding = make_coinbase(alice.address, 100)
        tx = build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 10)
        tampered = Transaction(
            inputs=tx.inputs,
            outputs=(TxOutput(amount=90, recipient=bob.address),),
        )
        assert not tampered.verify_input_signatures()

    def test_txid_changes_with_content(self, rng):
        alice, bob = alice_bob(rng)
        funding = make_coinbase(alice.address, 100)
        t1 = build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 10)
        t2 = build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 11)
        assert t1.txid != t2.txid

    def test_structure_constraints(self):
        with pytest.raises(ValidationError):
            Transaction(inputs=(), outputs=(TxOutput(1, Address.zero()),))
        with pytest.raises(ValidationError):
            Transaction(
                inputs=(TxInput(Hash.zero(), 0xFFFFFFFF),), outputs=()
            )


class TestAccountTransaction:
    def test_sign_and_verify(self, rng):
        alice, bob = alice_bob(rng)
        tx = sign_account_transaction(alice, nonce=0, recipient=bob.address, value=10)
        assert tx.verify_signature()
        assert tx.sender == alice.address

    def test_tampered_value_fails(self, rng):
        alice, bob = alice_bob(rng)
        tx = sign_account_transaction(alice, nonce=0, recipient=bob.address, value=10)
        forged = AccountTransaction(
            sender_public_key=tx.sender_public_key,
            nonce=tx.nonce,
            recipient=tx.recipient,
            value=9999,
            gas_limit=tx.gas_limit,
            gas_price=tx.gas_price,
            signature=tx.signature,
        )
        assert not forged.verify_signature()

    def test_field_validation(self, rng):
        alice, bob = alice_bob(rng)
        with pytest.raises(ValidationError):
            AccountTransaction(alice.public_key, 0, bob.address, -1, 21000, 1)
        with pytest.raises(ValidationError):
            AccountTransaction(alice.public_key, 0, bob.address, 1, 0, 1)
        with pytest.raises(ValidationError):
            AccountTransaction(alice.public_key, 0, bob.address, 1, 21000, -1)

    def test_size_accounts_for_data(self, rng):
        alice, bob = alice_bob(rng)
        small = sign_account_transaction(alice, 0, bob.address, 1)
        big = sign_account_transaction(alice, 0, bob.address, 1, data=b"\x01" * 100)
        assert big.size_bytes == small.size_bytes + 100
