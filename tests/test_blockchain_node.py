"""Integration tests for repro.blockchain.node over the simulated network."""

from dataclasses import replace

import pytest

from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK, LinkParams
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode, PosSlotDriver
from repro.blockchain.params import BITCOIN, ETHEREUM, ETHEREUM_POS
from repro.blockchain.pos import ValidatorSet
from repro.blockchain.transaction import build_transaction, sign_account_transaction


FAST_BITCOIN = replace(BITCOIN, target_block_interval_s=10.0, confirmation_depth=3)
FAST_ETHEREUM = replace(ETHEREUM, target_block_interval_s=5.0, confirmation_depth=3)


def build_pow_network(params, accounts, node_count=4, seed=0, link=FAST_LINK):
    rng_keys = [KeyPair.from_seed(bytes([i]) * 32) for i in range(accounts)]
    allocations = {kp.address: 1_000_000 for kp in rng_keys}
    genesis = build_genesis_with_allocations(allocations)
    sim = Simulator(seed=seed)
    net = Network(sim)
    if params.uses_gas:
        factory = lambda nid: BlockchainNode(  # noqa: E731
            nid, params, genesis, genesis_allocations=allocations
        )
    else:
        factory = lambda nid: BlockchainNode(nid, params, genesis)  # noqa: E731
    nodes = complete_topology(net, node_count, factory, link)
    for i, node in enumerate(nodes):
        miner_key = KeyPair.from_seed(bytes([100 + i]) * 32)
        node.start_pow_mining(1.0 / node_count, miner_key.address)
    return sim, net, list(nodes), rng_keys


class TestUtxoNetwork:
    def test_blocks_propagate_and_converge(self):
        sim, net, nodes, keys = build_pow_network(FAST_BITCOIN, accounts=2)
        sim.run(until=600)
        heads = {n.chain.head.block_id for n in nodes}
        assert len(heads) == 1
        assert nodes[0].chain.height > 30  # ~60 expected at 10s interval

    def test_transaction_reaches_confirmation(self):
        sim, net, nodes, keys = build_pow_network(FAST_BITCOIN, accounts=2)
        alice, bob = keys
        genesis_cb = nodes[0].chain.genesis.transactions[0]
        spendable = nodes[0].utxo.spendable(alice.address)
        tx = build_transaction(alice, spendable, bob.address, 500, fee=10)
        nodes[0].submit_transaction(tx)
        sim.run(until=600)
        assert all(n.balance(bob.address) == 1_000_500 for n in nodes)
        assert nodes[0].is_confirmed(tx.txid)
        assert nodes[0].confirmations(tx.txid) >= FAST_BITCOIN.confirmation_depth

    def test_fees_flow_to_miner(self):
        sim, net, nodes, keys = build_pow_network(FAST_BITCOIN, accounts=2)
        alice, bob = keys
        tx = build_transaction(
            alice, nodes[0].utxo.spendable(alice.address), bob.address, 500, fee=10
        )
        nodes[0].submit_transaction(tx)
        sim.run(until=600)
        # Total supply = genesis + rewards*height + (fee moved, not burned).
        total = nodes[0].utxo.total_value()
        expected = 2_000_000 + FAST_BITCOIN.block_reward * nodes[0].chain.height
        assert total == expected

    def test_invalid_transaction_not_admitted(self):
        sim, net, nodes, keys = build_pow_network(FAST_BITCOIN, accounts=2)
        alice, bob = keys
        tx = build_transaction(
            alice, nodes[0].utxo.spendable(alice.address), bob.address, 500
        )
        from repro.blockchain.transaction import Transaction, TxInput

        mallory = KeyPair.from_seed(bytes([200]) * 32)
        forged = Transaction(
            inputs=tuple(
                TxInput(i.prev_txid, i.prev_index, mallory.public_key, i.signature)
                for i in tx.inputs
            ),
            outputs=tx.outputs,
        )
        assert not nodes[0].submit_transaction(forged)

    def test_soft_forks_resolve_under_high_latency(self):
        slow = LinkParams(latency_s=3.0, jitter_s=1.0, bandwidth_bps=1e9)
        sim, net, nodes, keys = build_pow_network(
            FAST_BITCOIN, accounts=2, link=slow, seed=4
        )
        sim.run(until=3000)
        # With latency ~1/3 of the interval, forks must have occurred...
        assert sum(n.stats.reorgs for n in nodes) > 0
        # ...and still converged to a single chain.
        assert len({n.chain.head.block_id for n in nodes}) == 1

    def test_orphaned_transactions_are_remined(self):
        slow = LinkParams(latency_s=3.0, jitter_s=1.0, bandwidth_bps=1e9)
        sim, net, nodes, keys = build_pow_network(
            FAST_BITCOIN, accounts=2, link=slow, seed=4
        )
        alice, bob = keys
        tx = build_transaction(
            alice, nodes[0].utxo.spendable(alice.address), bob.address, 123
        )
        nodes[0].submit_transaction(tx)
        sim.run(until=3000)
        assert all(n.balance(bob.address) == 1_000_123 for n in nodes)


class TestAccountNetwork:
    def test_account_transfer_confirms(self):
        sim, net, nodes, keys = build_pow_network(FAST_ETHEREUM, accounts=2)
        alice, bob = keys
        tx = sign_account_transaction(alice, 0, bob.address, 777, gas_price=1)
        nodes[1].submit_transaction(tx)
        sim.run(until=300)
        assert all(n.balance(bob.address) == 1_000_777 for n in nodes)
        assert nodes[0].is_confirmed(tx.txid)

    def test_state_roots_agree_across_nodes(self):
        sim, net, nodes, keys = build_pow_network(FAST_ETHEREUM, accounts=3)
        alice, bob, carol = keys
        nodes[0].submit_transaction(
            sign_account_transaction(alice, 0, bob.address, 10, gas_price=1)
        )
        nodes[1].submit_transaction(
            sign_account_transaction(bob, 0, carol.address, 20, gas_price=1)
        )
        sim.run(until=300)
        roots = {n.state.root_hash for n in nodes}
        assert len(roots) == 1

    def test_nonce_ordering_enforced_end_to_end(self):
        sim, net, nodes, keys = build_pow_network(FAST_ETHEREUM, accounts=2)
        alice, bob = keys
        # Submit nonce 1 before nonce 0: it waits in mempools but cannot
        # execute until nonce 0 lands.
        tx1 = sign_account_transaction(alice, 1, bob.address, 5, gas_price=1)
        tx0 = sign_account_transaction(alice, 0, bob.address, 5, gas_price=1)
        nodes[0].submit_transaction(tx1)
        sim.run(until=60)
        nodes[0].submit_transaction(tx0)
        sim.run(until=400)
        assert nodes[0].balance(bob.address) == 1_000_010


class TestPosNetwork:
    def test_pos_chain_advances_without_mining(self):
        keys = [KeyPair.from_seed(bytes([i]) * 32) for i in range(2)]
        allocations = {kp.address: 1_000_000 for kp in keys}
        genesis = build_genesis_with_allocations(allocations)
        sim = Simulator(seed=0)
        net = Network(sim)
        factory = lambda nid: BlockchainNode(  # noqa: E731
            nid, ETHEREUM_POS, genesis, genesis_allocations=allocations
        )
        nodes = list(complete_topology(net, 3, factory, FAST_LINK))

        validator_keys = [KeyPair.from_seed(bytes([50 + i]) * 32) for i in range(3)]
        validators = ValidatorSet()
        for i, vk in enumerate(validator_keys):
            validators.deposit(vk.address, (i + 1) * 1000)
        driver = PosSlotDriver(
            {vk.address: node for vk, node in zip(validator_keys, nodes)}, validators
        )
        driver.start(sim, until=200)
        sim.run(until=205)  # let the final slot's block propagate
        assert nodes[0].chain.height == pytest.approx(200 / 4.0, abs=2)
        assert len({n.chain.head.block_id for n in nodes}) == 1
        # Stake-weighted proposer mix: heaviest staker proposes most.
        counts = {
            vk.address: driver.proposer_history.count(vk.address)
            for vk in validator_keys
        }
        assert counts[validator_keys[2].address] > counts[validator_keys[0].address]
