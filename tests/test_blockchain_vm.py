"""Tests for repro.blockchain.vm (the gas-metered contract VM)."""

import pytest

from repro.blockchain.vm import (
    ExecutionContext,
    Op,
    VmError,
    assemble,
    counter_contract,
    execute,
    vault_contract,
)


def run(code, gas=1_000_000, **ctx_kwargs):
    defaults = dict(caller=0xABC, call_value=0)
    defaults.update(ctx_kwargs)
    return execute(code, gas, ExecutionContext(**defaults))


class TestAssembler:
    def test_push_encodes_operand(self):
        code = assemble(Op.PUSH, 258)
        assert code[0] == Op.PUSH
        assert int.from_bytes(code[1:9], "big") == 258

    def test_push_requires_operand(self):
        with pytest.raises(VmError):
            assemble(Op.PUSH)
        with pytest.raises(VmError):
            assemble(Op.PUSH, Op.ADD)

    def test_non_opcode_rejected(self):
        with pytest.raises(VmError):
            assemble(42)


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Op.ADD, 2, 3, 5),
            (Op.SUB, 7, 3, 4),
            (Op.MUL, 6, 7, 42),
            (Op.DIV, 20, 5, 4),
            (Op.DIV, 1, 0, 0),  # div-by-zero yields 0, not a crash
            (Op.MOD, 17, 5, 2),
            (Op.MOD, 1, 0, 0),
            (Op.LT, 1, 2, 1),
            (Op.LT, 2, 1, 0),
            (Op.GT, 2, 1, 1),
            (Op.EQ, 5, 5, 1),
        ],
    )
    def test_binary_ops(self, op, a, b, expected):
        # Operands push b first so `a` ends on top (ops use top OP second).
        result = run(assemble(Op.PUSH, b, Op.PUSH, a, op, Op.RETURN))
        assert result.success
        assert result.return_value == expected

    def test_words_wrap_at_256_bits(self):
        # (2^64-1)^8 overflows 256 bits; the VM must reduce mod 2^256.
        x = 2**64 - 1
        code = assemble(
            Op.PUSH, x, Op.DUP, Op.MUL, Op.DUP, Op.MUL, Op.DUP, Op.MUL,
            Op.RETURN,
        )
        assert run(code).return_value == pow(x, 8, 2**256)

    def test_iszero_and_not(self):
        assert run(assemble(Op.PUSH, 0, Op.ISZERO, Op.RETURN)).return_value == 1
        assert run(assemble(Op.PUSH, 9, Op.ISZERO, Op.RETURN)).return_value == 0


class TestControlFlow:
    def test_jump_skips_code(self):
        # jump over a PUSH 99 to the RETURN of PUSH 1
        code = assemble(
            Op.PUSH, 1,           # [1]
            Op.PUSH, 28, Op.JUMP,  # jump to RETURN (pc 28)
            Op.PUSH, 99,          # skipped
            Op.RETURN,            # pc 28
        )
        assert run(code).return_value == 1

    def test_jumpi_taken_and_not_taken(self):
        def branchy(flag):
            return run(assemble(
                Op.PUSH, flag,
                Op.PUSH, 29, Op.JUMPI,   # if flag -> skip to pc 29
                Op.PUSH, 111, Op.RETURN,
                Op.PUSH, 222, Op.RETURN,  # pc 29
            ))
        assert branchy(0).return_value == 111
        assert branchy(1).return_value == 222

    def test_jump_out_of_bounds_fails(self):
        result = run(assemble(Op.PUSH, 9999, Op.JUMP))
        assert not result.success
        assert "out of bounds" in result.error

    def test_fallthrough_halts_successfully(self):
        result = run(assemble(Op.PUSH, 1, Op.POP))
        assert result.success and result.return_value is None

    def test_invalid_opcode(self):
        result = run(b"\xfe")
        assert not result.success and "invalid opcode" in result.error

    def test_stack_underflow(self):
        result = run(assemble(Op.ADD))
        assert not result.success and "underflow" in result.error


class TestGas:
    def test_gas_metered_per_opcode(self):
        result = run(assemble(Op.PUSH, 1, Op.PUSH, 2, Op.ADD, Op.RETURN))
        assert result.gas_used == 3 + 3 + 3 + 0

    def test_out_of_gas_burns_everything(self):
        # An infinite loop must terminate by gas exhaustion.
        code = assemble(Op.PUSH, 0, Op.JUMP)
        result = execute(code, 500, ExecutionContext(caller=0, call_value=0))
        assert not result.success
        assert result.gas_used == 500  # all gas consumed
        assert "out of gas" in result.error

    def test_out_of_gas_discards_writes(self):
        code = assemble(Op.PUSH, 7, Op.PUSH, 0, Op.SSTORE, Op.PUSH, 0, Op.JUMP)
        result = execute(code, 6_000, ExecutionContext(caller=0, call_value=0))
        assert not result.success
        assert result.storage_writes == {}

    def test_sstore_is_expensive(self):
        cheap = run(assemble(Op.PUSH, 1, Op.POP)).gas_used
        dear = run(assemble(Op.PUSH, 1, Op.PUSH, 0, Op.SSTORE)).gas_used
        assert dear > cheap + 4_000


class TestStorageAndEnvironment:
    def test_sload_reads_context(self):
        result = run(
            assemble(Op.PUSH, 5, Op.SLOAD, Op.RETURN),
            storage_read=lambda slot: 100 + slot,
        )
        assert result.return_value == 105

    def test_sload_sees_own_writes(self):
        code = assemble(
            Op.PUSH, 42, Op.PUSH, 3, Op.SSTORE,  # storage[3] = 42
            Op.PUSH, 3, Op.SLOAD, Op.RETURN,
        )
        result = run(code, storage_read=lambda slot: 0)
        assert result.return_value == 42
        assert result.storage_writes == {3: 42}

    def test_caller_and_callvalue(self):
        assert run(assemble(Op.CALLER, Op.RETURN), caller=77).return_value == 77
        assert run(assemble(Op.CALLVALUE, Op.RETURN), call_value=9).return_value == 9

    def test_args(self):
        result = run(
            assemble(Op.PUSH, 1, Op.ARG, Op.RETURN), call_args=(10, 20, 30)
        )
        assert result.return_value == 20

    def test_missing_arg_is_zero(self):
        assert run(assemble(Op.PUSH, 5, Op.ARG, Op.RETURN)).return_value == 0

    def test_balance_opcode(self):
        result = run(
            assemble(Op.PUSH, 123, Op.BALANCE, Op.RETURN),
            balance_read=lambda addr: addr * 2,
        )
        assert result.return_value == 246

    def test_revert_reports_failure_without_writes(self):
        code = assemble(Op.PUSH, 9, Op.PUSH, 0, Op.SSTORE, Op.REVERT)
        result = run(code)
        assert not result.success
        assert result.storage_writes == {}
        assert result.error == "explicit revert"


class TestSamplePrograms:
    def test_counter_increments(self):
        code = counter_contract()
        first = run(code, storage_read=lambda slot: 0)
        assert first.success and first.return_value == 1
        second = run(code, storage_read=lambda slot: first.storage_writes.get(slot, 0))
        assert second.return_value == 2

    def test_counter_adds_argument(self):
        code = counter_contract()
        result = run(code, storage_read=lambda s: 10, call_args=(5,))
        assert result.return_value == 16

    def test_vault_accumulates_deposits(self):
        code = vault_contract()
        first = run(code, call_value=100, storage_read=lambda s: 0)
        assert first.success and first.return_value == 100
        second = run(
            code, call_value=50,
            storage_read=lambda s: first.storage_writes.get(s, 0),
        )
        assert second.return_value == 150

    def test_vault_rejects_zero_deposit(self):
        result = run(vault_contract(), call_value=0)
        assert not result.success and result.error == "explicit revert"
