"""Tests for the layered protocol stack (repro.protocol).

Covers the layers in isolation (intake parking/eviction, transport
offline queueing) and the cross-paradigm lifecycle guarantees the stack
gives every node type: republish-on-reconnect (previously NanoNode-only,
forced there by the fuzzer) and intake revival on partition heal.
"""

from dataclasses import replace

import pytest

from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK
from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.protocol import IntakeLayer, TransportLayer, protocol_nodes
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import MSG_BLOCK, BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.blockchain.transaction import build_transaction
from repro.dag.byteball_node import ByteballNode
from repro.dag.tangle import issue_transaction
from repro.dag.tangle_node import MSG_TANGLE_TX, TangleNode

FAST_BITCOIN = replace(BITCOIN, target_block_interval_s=10.0, confirmation_depth=3)


# ---------------------------------------------------------------------------
# IntakeLayer
# ---------------------------------------------------------------------------


class TestIntakeLayer:
    def test_park_and_satisfy_in_arrival_order(self):
        intake = IntakeLayer()
        intake.park("dep", "a")
        intake.park("dep", "b")
        intake.park("other", "c")
        assert len(intake) == 3
        assert "dep" in intake
        assert intake.parked_for("dep") == ["a", "b"]
        assert intake.satisfy("dep") == ["a", "b"]
        assert len(intake) == 1
        assert intake.satisfy("dep") == []
        assert intake.counters.parked == 3
        assert intake.counters.retried == 2

    def test_drain_pops_everything_oldest_first(self):
        intake = IntakeLayer()
        intake.park("d1", "a")
        intake.park("d2", "b")
        intake.park("d1", "c")
        assert intake.drain() == ["a", "c", "b"]
        assert len(intake) == 0
        assert intake.waiting_on() == []
        assert intake.counters.revived == 3

    def test_capacity_evicts_stalest_dependency(self):
        intake = IntakeLayer(capacity=2)
        intake.park("d1", "a")
        intake.park("d2", "b")
        evicted = intake.park("d3", "c")
        assert evicted == 1
        assert len(intake) == 2
        assert "d1" not in intake  # stalest dependency went first
        assert intake.counters.evicted == 1

    def test_eviction_never_drops_the_artifact_just_parked(self):
        intake = IntakeLayer(capacity=1)
        intake.park("d1", "a")
        intake.park("d1", "b")  # same key over capacity: oldest entry goes
        assert intake.parked_for("d1") == ["b"]
        assert len(intake) == 1

    def test_just_parked_bucket_sheds_its_own_oldest_entries(self):
        # When the just-parked key IS the stalest bucket, eviction pops
        # that bucket's oldest entries one at a time — the freshly
        # parked artifact (last in the bucket) is never the victim.
        intake = IntakeLayer(capacity=2)
        intake.park("d1", "a")
        intake.park("d1", "b")
        evicted = intake.park("d1", "c")
        assert evicted == 1
        assert intake.parked_for("d1") == ["b", "c"]
        assert len(intake) == 2
        assert intake.counters.parked == 3
        assert intake.counters.evicted == 1

    def test_break_leaves_size_over_capacity_by_design(self):
        """Pin the ``break`` branch: when the oldest bucket is the
        just-parked key shed down to the one artifact just parked,
        eviction stops rather than drop it — or touch *newer* buckets —
        intentionally leaving ``len > capacity``.  (With a constant
        capacity the invariant ``len <= capacity + 1`` keeps this
        unreachable; shrinking capacity at runtime exposes it, e.g. an
        adaptive memory bound.)"""
        intake = IntakeLayer(capacity=4)
        intake.park("old", "a")
        intake.park("new", "b")
        intake.park("new", "c")
        intake.capacity = 1  # runtime shrink
        evicted = intake.park("old", "d")
        # "old" is the stalest bucket and the just-parked key: its stale
        # entry "a" is shed, then the loop breaks on the just-parked "d"
        # instead of dropping it or skipping ahead to newer buckets.
        assert evicted == 1
        assert intake.parked_for("old") == ["d"]
        assert intake.parked_for("new") == ["b", "c"]
        assert len(intake) == 3  # > capacity, by design
        assert intake.counters.parked == 4
        assert intake.counters.evicted == 1
        # The next park on a *different* key resumes normal FIFO
        # eviction and drains the backlog.
        evicted = intake.park("fresh", "e")
        assert evicted == 3
        assert intake.parked_for("fresh") == ["e"]
        assert len(intake) == 1

    def test_counters_stay_consistent_through_eviction_churn(self):
        """parked - retried - revived - evicted must equal the live
        size through any interleaving of park/satisfy/drain/evict."""
        intake = IntakeLayer(capacity=3)

        def live_balance():
            c = intake.counters
            return c.parked - c.retried - c.revived - c.evicted

        intake.park("d1", "a")
        intake.park("d2", "b")
        intake.park("d2", "c")
        assert live_balance() == len(intake) == 3
        intake.park("d3", "d")  # evicts the d1 bucket
        assert live_balance() == len(intake) == 3
        assert intake.satisfy("d2") == ["b", "c"]
        assert live_balance() == len(intake) == 1
        intake.park("d4", "e")
        assert intake.drain() == ["d", "e"]
        assert live_balance() == len(intake) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            IntakeLayer(capacity=0)

    def test_unbounded_when_capacity_none(self):
        intake = IntakeLayer(capacity=None)
        for i in range(5000):
            intake.park(f"d{i}", i)
        assert len(intake) == 5000
        assert intake.counters.evicted == 0


# ---------------------------------------------------------------------------
# TransportLayer
# ---------------------------------------------------------------------------


class _FakeNode:
    def __init__(self):
        self.online = True
        self.sent = []

    def broadcast(self, message):
        self.sent.append(message)


def _msg(tag):
    return Message(kind="t", payload=tag, size_bytes=10, dedup_key=tag)


class TestTransportLayer:
    def test_publish_online_broadcasts_immediately(self):
        node = _FakeNode()
        transport = TransportLayer(node)
        assert transport.publish("a", _msg("a")) is True
        assert [m.payload for m in node.sent] == ["a"]
        assert transport.counters.published == 1
        assert transport.offline_backlog == 0

    def test_publish_offline_queues_until_reconnect(self):
        node = _FakeNode()
        transport = TransportLayer(node)
        node.online = False
        assert transport.publish("a", _msg("a")) is False
        assert transport.publish("b", _msg("b")) is False
        assert node.sent == []
        assert transport.offline_backlog == 2
        node.online = True
        assert transport.on_reconnect() == 2
        assert [m.payload for m in node.sent] == ["a", "b"]
        assert transport.counters.queued_offline == 2
        assert transport.counters.republished == 2

    def test_reconnect_filters_through_retain(self):
        node = _FakeNode()
        transport = TransportLayer(node, retain=lambda artifact: artifact == "keep")
        node.online = False
        transport.publish("keep", _msg("keep"))
        transport.publish("stale", _msg("stale"))
        node.online = True
        assert transport.on_reconnect() == 1
        assert [m.payload for m in node.sent] == ["keep"]
        assert transport.counters.dropped_stale == 1


# ---------------------------------------------------------------------------
# Republish-on-reconnect, per paradigm (the PR-4 NanoNode fix, now shared;
# NanoNode's own regression lives in test_dag_node.py::TestOfflineRepublish)
# ---------------------------------------------------------------------------


def build_chain_network(node_count=3, seed=0):
    keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(2)]
    allocations = {kp.address: 1_000_000 for kp in keys}
    genesis = build_genesis_with_allocations(allocations)
    sim = Simulator(seed=seed)
    net = Network(sim)
    factory = lambda nid: BlockchainNode(nid, FAST_BITCOIN, genesis)  # noqa: E731
    nodes = protocol_nodes(complete_topology(net, node_count, factory, FAST_LINK))
    return sim, net, nodes, keys


def build_tangle_network(node_count=3, seed=0, **node_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim)
    factory = lambda nid: TangleNode(  # noqa: E731
        nid, seed=int(nid[1:]), **node_kwargs
    )
    nodes = protocol_nodes(complete_topology(net, node_count, factory, FAST_LINK))
    key = KeyPair.from_seed(bytes([9]) * 32)
    genesis = nodes[0].seed_genesis(key)
    for node in nodes[1:]:
        node.install_genesis(genesis)
    return sim, net, nodes, key


def build_byteball_network(node_count=3, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    witness = KeyPair.from_seed(bytes([7]) * 32)
    factory = lambda nid: ByteballNode(nid, [witness.address])  # noqa: E731
    nodes = protocol_nodes(complete_topology(net, node_count, factory, FAST_LINK))
    genesis = nodes[0].seed_genesis(witness)
    for node in nodes[1:]:
        node.install_genesis(genesis)
    return sim, net, nodes, witness


class TestRepublishOnReconnect:
    def test_blockchain_transaction_created_offline_republishes(self):
        sim, net, nodes, keys = build_chain_network()
        alice, bob = keys
        wallet = nodes[0]
        wallet.set_online(False)
        tx = build_transaction(
            alice, wallet.utxo.spendable(alice.address), bob.address, 500, fee=10
        )
        assert wallet.submit_transaction(tx)  # admitted locally, queued
        sim.run(until=sim.now + 10)
        assert all(tx.txid not in n.mempool for n in nodes[1:])
        wallet.set_online(True)
        sim.run(until=sim.now + 10)
        assert all(tx.txid in n.mempool for n in nodes[1:])
        assert wallet.transport.counters.republished == 1

    def test_blockchain_block_produced_offline_republishes(self):
        sim, net, nodes, keys = build_chain_network()
        producer = nodes[0]
        proposer = KeyPair.from_seed(bytes([42]) * 32).address
        producer.set_online(False)
        block = producer.create_block_template(timestamp=sim.now, proposer=proposer)
        producer.receive_block(block)
        producer.transport.publish(
            block,
            Message(kind=MSG_BLOCK, payload=block,
                    size_bytes=block.size_bytes, dedup_key=block.block_id),
        )
        sim.run(until=sim.now + 10)
        assert all(n.chain.height == 0 for n in nodes[1:])
        producer.set_online(True)
        sim.run(until=sim.now + 10)
        assert all(n.chain.height == 1 for n in nodes)
        assert len({n.chain.head.block_id for n in nodes}) == 1

    def test_tangle_transaction_issued_offline_republishes(self):
        sim, net, nodes, key = build_tangle_network()
        issuer = nodes[0]
        issuer.set_online(False)
        tx = issuer.issue(key, b"made-offline")
        sim.run(until=sim.now + 10)
        assert all(tx.tx_hash not in n.tangle for n in nodes[1:])
        issuer.set_online(True)
        sim.run(until=sim.now + 10)
        assert all(tx.tx_hash in n.tangle for n in nodes)

    def test_byteball_unit_issued_offline_republishes(self):
        sim, net, nodes, witness = build_byteball_network()
        issuer = nodes[0]
        issuer.set_online(False)
        unit = issuer.issue(witness, b"made-offline")
        sim.run(until=sim.now + 10)
        assert all(unit.unit_hash not in n.dag for n in nodes[1:])
        issuer.set_online(True)
        sim.run(until=sim.now + 10)
        assert all(unit.unit_hash in n.dag for n in nodes)


# ---------------------------------------------------------------------------
# Bounded intake + revival on partition heal
# ---------------------------------------------------------------------------


class TestBoundedIntake:
    def test_tangle_pending_parent_buffer_is_bounded(self):
        sim, net, nodes, key = build_tangle_network(intake_capacity=2)
        target = nodes[-1]
        tips = nodes[0].tangle.tips()
        orphans = []
        for i in range(3):
            parent = issue_transaction(key, tips[0], tips[0], f"p{i}".encode(), 10.0)
            child = issue_transaction(
                key, parent.tx_hash, parent.tx_hash, f"c{i}".encode(), 11.0
            )
            orphans.append(child)
            target.deliver(
                "test",
                Message(kind=MSG_TANGLE_TX, payload=child,
                        size_bytes=child.size_bytes, dedup_key=child.tx_hash),
            )
        assert target.stats.parked == 3
        assert len(target.intake) == 2  # capacity bound held
        assert target.intake.counters.evicted == 1

    def test_tangle_parked_transactions_revive_on_partition_heal(self):
        sim, net, nodes, key = build_tangle_network()
        target = nodes[-1]
        target_id = target.node_id
        others = [n.node_id for n in nodes if n is not target]
        net.partition([others, [target_id]])
        parent = nodes[0].issue(key, b"parent")
        sim.run(until=sim.now + 2)
        child = issue_transaction(
            key, parent.tx_hash, parent.tx_hash, b"child", sim.now
        )
        # The child sneaks in via direct delivery; its parent is stuck on
        # the far side of the partition, so it parks.
        target.deliver(
            "test",
            Message(kind=MSG_TANGLE_TX, payload=child,
                    size_bytes=child.size_bytes, dedup_key=child.tx_hash),
        )
        assert child.tx_hash not in target.tangle
        assert len(target.intake) == 1
        net.heal()
        sim.run(until=sim.now + 15)
        assert parent.tx_hash in target.tangle
        assert child.tx_hash in target.tangle
        assert len(target.intake) == 0

    def test_heal_revives_even_without_retried_gossip(self):
        """Revival must not depend on the dependency re-arriving through
        this node's own ingest path: adopt the parent out-of-band (as
        bootstrap does), then heal — the parked child integrates."""
        sim, net, nodes, key = build_tangle_network()
        target = nodes[-1]
        parent = issue_transaction(
            key, nodes[0].tangle.genesis_hash, nodes[0].tangle.genesis_hash,
            b"parent", 5.0,
        )
        child = issue_transaction(
            key, parent.tx_hash, parent.tx_hash, b"child", 6.0
        )
        target.deliver(
            "test",
            Message(kind=MSG_TANGLE_TX, payload=child,
                    size_bytes=child.size_bytes, dedup_key=child.tx_hash),
        )
        assert len(target.intake) == 1
        target.tangle.attach(parent)  # out-of-band adoption, no retry fires
        net.heal()
        assert child.tx_hash in target.tangle
        assert len(target.intake) == 0
        assert target.intake.counters.revived == 1


# ---------------------------------------------------------------------------
# ByteballNode basics (the fourth paradigm on the stack)
# ---------------------------------------------------------------------------


class TestByteballNode:
    def test_issued_units_reach_all_replicas_in_total_order(self):
        sim, net, nodes, witness = build_byteball_network(node_count=4)
        for i in range(8):
            nodes[i % len(nodes)].issue(witness, f"u{i}".encode())
            sim.run(until=sim.now + 1)
        sim.run(until=sim.now + 10)
        assert {len(n.dag) for n in nodes} == {9}  # genesis + 8
        orders = {tuple(n.dag.total_order()) for n in nodes}
        assert len(orders) == 1

    def test_out_of_order_units_park_and_recover(self):
        sim, net, nodes, witness = build_byteball_network()
        issuer, target = nodes[0], nodes[-1]
        parent = issuer.issue(witness, b"parent")
        from repro.dag.byteball import make_unit

        child = make_unit(witness, [parent.unit_hash], b"child", 50.0)
        target.handle_message("test", target._unit_message(child))
        assert child.unit_hash not in target.dag
        assert target.stats.parked == 1
        sim.run(until=sim.now + 5)  # parent arrives by gossip, retries child
        target.handle_message("test", target._unit_message(child))
        sim.run(until=sim.now + 5)
        assert child.unit_hash in target.dag

    def test_units_stabilize_under_witness_majority(self):
        sim, net, nodes, witness = build_byteball_network()
        first = nodes[0].issue(witness, b"first")
        for i in range(10):
            nodes[0].issue(witness, f"w{i}".encode())
            sim.run(until=sim.now + 1)
        sim.run(until=sim.now + 5)
        assert all(n.is_stable(first.unit_hash) for n in nodes)
