"""Tests for repro.scaling.plasma (Section VI-A nested chains)."""

import pytest

from repro.common.errors import FraudProofError, ValidationError
from repro.crypto.keys import KeyPair
from repro.scaling.plasma import (
    Commitment,
    PlasmaChain,
    PlasmaOperator,
    PlasmaTx,
)


@pytest.fixture
def plasma(rng):
    users = [KeyPair.generate(rng) for _ in range(3)]
    operator_addr = KeyPair.generate(rng).address
    chain = PlasmaChain(operator=operator_addr, bond=10_000)
    operator = PlasmaOperator(
        chain, deposits={u.address: 1_000 for u in users}
    )
    return chain, operator, users


class TestChildChain:
    def test_transfer_applies(self, plasma):
        chain, operator, users = plasma
        a, b, _ = users
        operator.submit_tx(PlasmaTx(a.address, b.address, 100, nonce=0))
        block = operator.seal_block()
        assert operator.balances[a.address] == 900
        assert operator.balances[b.address] == 1_100
        assert block.number == 0

    def test_overspend_rejected_at_submit(self, plasma):
        chain, operator, users = plasma
        a, b, _ = users
        with pytest.raises(ValidationError):
            operator.submit_tx(PlasmaTx(a.address, b.address, 9_999, nonce=0))

    def test_bad_nonce_rejected(self, plasma):
        chain, operator, users = plasma
        a, b, _ = users
        with pytest.raises(ValidationError):
            operator.submit_tx(PlasmaTx(a.address, b.address, 1, nonce=5))

    def test_empty_block_rejected(self, plasma):
        chain, operator, _ = plasma
        with pytest.raises(ValidationError):
            operator.seal_block()

    def test_value_conserved(self, plasma):
        chain, operator, users = plasma
        a, b, c = users
        operator.submit_tx(PlasmaTx(a.address, b.address, 100, nonce=0))
        operator.submit_tx(PlasmaTx(b.address, c.address, 50, nonce=0))
        operator.seal_block()
        assert sum(operator.balances.values()) == 3_000


class TestCommitments:
    def test_only_roots_reach_the_root_chain(self, plasma):
        """"Only Merkle roots created in the sidechains are periodically
        broadcasted to the main network"."""
        chain, operator, users = plasma
        a, b, _ = users
        for n in range(5):
            operator.submit_tx(PlasmaTx(a.address, b.address, 10, nonce=n))
            operator.seal_block()
        assert len(chain.commitments) == 5
        assert chain.on_chain_bytes() == 5 * Commitment.SIZE_BYTES
        assert operator.child_chain_bytes() > chain.on_chain_bytes()
        assert operator.compression_ratio() > 1.0

    def test_duplicate_commitment_rejected(self, plasma):
        chain, operator, users = plasma
        a, b, _ = users
        operator.submit_tx(PlasmaTx(a.address, b.address, 10, nonce=0))
        block = operator.seal_block()
        with pytest.raises(ValidationError):
            chain.submit_commitment(
                Commitment(block_number=block.number, root=block.root)
            )

    def test_inclusion_proofs_verify_against_commitment(self, plasma):
        chain, operator, users = plasma
        a, b, _ = users
        tx = PlasmaTx(a.address, b.address, 10, nonce=0)
        operator.submit_tx(tx)
        block = operator.seal_block()
        proof = operator.inclusion_proof(block.number, tx)
        assert proof.verify(chain.commitments[block.number].root)


class TestFraud:
    def sneak_invalid(self, plasma):
        chain, operator, users = plasma
        a, b, _ = users
        operator.submit_tx(PlasmaTx(a.address, b.address, 10, nonce=0))
        invalid = PlasmaTx(a.address, b.address, 999_999, nonce=7)  # overspend
        block = operator.seal_block(include_invalid=invalid)
        return chain, operator, users, block, invalid

    def test_fraud_proof_slashes_bond(self, plasma):
        """"Stakeholders need to display proof of fraud and the Byzantine
        node gets penalized"."""
        chain, operator, users, block, invalid = self.sneak_invalid(plasma)
        proof = operator.build_fraud_proof(block.number, invalid, "overspend")
        slashed = chain.challenge(proof)
        assert slashed == 10_000
        assert chain.operator_slashed
        assert chain.halted

    def test_halted_chain_rejects_commitments(self, plasma):
        chain, operator, users, block, invalid = self.sneak_invalid(plasma)
        chain.challenge(operator.build_fraud_proof(block.number, invalid, "overspend"))
        a, b, _ = users
        operator.submit_tx(PlasmaTx(a.address, b.address, 1, nonce=1))
        with pytest.raises(ValidationError):
            operator.seal_block()

    def test_fraud_proof_must_match_commitment(self, plasma):
        chain, operator, users, block, invalid = self.sneak_invalid(plasma)
        proof = operator.build_fraud_proof(block.number, invalid, "overspend")
        from dataclasses import replace

        with pytest.raises(FraudProofError):
            chain.challenge(replace(proof, block_number=99))

    def test_honest_tx_cannot_be_framed(self, plasma):
        chain, operator, users = plasma
        a, b, _ = users
        tx = PlasmaTx(a.address, b.address, 10, nonce=0)
        operator.submit_tx(tx)
        block = operator.seal_block()
        proof = operator.build_fraud_proof(block.number, tx, "not-a-reason")
        with pytest.raises(FraudProofError):
            chain.challenge(proof)

    def test_mass_exit_after_fraud(self, plasma):
        chain, operator, users, block, invalid = self.sneak_invalid(plasma)
        chain.challenge(operator.build_fraud_proof(block.number, invalid, "overspend"))
        operator.exit_all()
        assert sum(chain.exited.values()) == 3_000

    def test_bond_must_be_positive(self, rng):
        with pytest.raises(ValidationError):
            PlasmaChain(KeyPair.generate(rng).address, bond=0)
