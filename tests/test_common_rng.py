"""Tests for repro.common.rng."""

import random

import pytest

from repro.common.rng import (
    exponential,
    fork_rng,
    make_rng,
    poisson_process,
    weighted_choice,
    zipf_weights,
)


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestForkRng:
    def test_labels_give_independent_streams(self):
        parent = make_rng(0)
        a = fork_rng(parent, "a")
        parent2 = make_rng(0)
        b = fork_rng(parent2, "b")
        assert a.random() != b.random()

    def test_same_label_same_parent_state_reproducible(self):
        a = fork_rng(make_rng(0), "x")
        b = fork_rng(make_rng(0), "x")
        assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]

    def test_fork_order_does_not_perturb_streams(self):
        """Regression: the docstring promise — adding a new consumer
        must not change the draws seen by existing ones."""
        parent = make_rng(42)
        a_first = fork_rng(parent, "a").random()
        parent = make_rng(42)
        fork_rng(parent, "new-consumer")  # interloper forks first
        a_second = fork_rng(parent, "a").random()
        assert a_first == a_second

    def test_fork_does_not_consume_parent_state(self):
        parent = make_rng(7)
        baseline = make_rng(7).random()
        fork_rng(parent, "anything")
        assert parent.random() == baseline

    def test_grandchild_streams_are_label_path_dependent(self):
        child_a = fork_rng(make_rng(0), "a")
        child_b = fork_rng(make_rng(0), "b")
        # Same leaf label under different parents: distinct streams.
        assert fork_rng(child_a, "leaf").random() != \
            fork_rng(child_b, "leaf").random()

    def test_plain_random_parent_still_forks(self):
        """Back-compat: a parent not created by make_rng falls back to
        the legacy draw-from-parent path."""
        parent = random.Random(3)
        child = fork_rng(parent, "legacy")
        assert 0.0 <= child.random() < 1.0


class TestExponential:
    def test_mean_close_to_inverse_rate(self):
        rng = make_rng(7)
        samples = [exponential(rng, 2.0) for _ in range(20_000)]
        mean = sum(samples) / len(samples)
        assert abs(mean - 0.5) < 0.02

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            exponential(make_rng(0), 0.0)


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = make_rng(3)
        counts = {"a": 0, "b": 0}
        for _ in range(10_000):
            counts[weighted_choice(rng, ["a", "b"], [3.0, 1.0])] += 1
        ratio = counts["a"] / counts["b"]
        assert 2.5 < ratio < 3.5

    def test_single_item(self):
        assert weighted_choice(make_rng(0), ["only"], [1.0]) == "only"

    def test_zero_weight_never_chosen(self):
        rng = make_rng(1)
        for _ in range(1000):
            assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), [], [])

    def test_zero_total_raises(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [0.0])


class TestZipfWeights:
    def test_alpha_zero_is_uniform(self):
        assert zipf_weights(4, 0.0) == [1.0, 1.0, 1.0, 1.0]

    def test_monotone_decreasing(self):
        weights = zipf_weights(10, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestPoissonProcess:
    def test_rate_matches_count(self):
        rng = make_rng(9)
        events = list(poisson_process(rng, rate=5.0, until=1000.0))
        assert 4500 < len(events) < 5500

    def test_all_events_within_horizon(self):
        events = list(poisson_process(make_rng(2), 1.0, 50.0))
        assert all(0 < t < 50.0 for t in events)

    def test_times_strictly_increasing(self):
        events = list(poisson_process(make_rng(4), 3.0, 100.0))
        assert all(a < b for a, b in zip(events, events[1:]))
