"""Tests for repro.dag.tangle (the IOTA-style DAG, paper footnote 1)."""

import random

import pytest

from repro.common.errors import UnknownParentError, ValidationError
from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.dag.tangle import Tangle, issue_transaction


@pytest.fixture
def tangle(rng):
    t = Tangle(work_difficulty=1)
    key = KeyPair.generate(rng)
    genesis = t.create_genesis(key)
    return t, key, genesis


def grow(tangle, key, count, rng, strategy="uniform", start_time=1.0):
    """Attach ``count`` transactions via tip selection; returns them."""
    txs = []
    for i in range(count):
        if strategy == "uniform":
            trunk, branch = tangle.select_tips_uniform(rng)
        else:
            trunk, branch = tangle.select_tips_mcmc(rng, alpha=0.05)
        tx = issue_transaction(
            key, trunk, branch, f"tx-{i}".encode(), start_time + i
        )
        tangle.attach(tx)
        txs.append(tx)
    return txs


class TestStructure:
    def test_genesis_is_the_first_tip(self, tangle):
        t, key, genesis = tangle
        assert t.tips() == [genesis.tx_hash]
        assert len(t) == 1

    def test_single_genesis_enforced(self, tangle, rng):
        t, key, _ = tangle
        with pytest.raises(ValidationError):
            t.create_genesis(KeyPair.generate(rng))

    def test_attachment_moves_tips(self, tangle, rng):
        t, key, genesis = tangle
        tx = issue_transaction(key, genesis.tx_hash, genesis.tx_hash, b"a", 1.0)
        t.attach(tx)
        assert t.tips() == [tx.tx_hash]
        assert t.approvers(genesis.tx_hash) == [tx.tx_hash]

    def test_unknown_parent_rejected(self, tangle):
        t, key, _ = tangle
        ghost = Hash(b"\x01" * 32)
        tx = issue_transaction(key, ghost, ghost, b"x", 1.0)
        with pytest.raises(UnknownParentError):
            t.attach(tx)

    def test_duplicate_rejected(self, tangle):
        t, key, genesis = tangle
        tx = issue_transaction(key, genesis.tx_hash, genesis.tx_hash, b"a", 1.0)
        t.attach(tx)
        with pytest.raises(ValidationError):
            t.attach(tx)

    def test_second_genesis_rejected_via_attach(self, tangle):
        t, key, _ = tangle
        fake = issue_transaction(key, Hash.zero(), Hash.zero(), b"g2", 1.0)
        with pytest.raises(ValidationError):
            t.attach(fake)

    def test_bad_signature_rejected(self, tangle, rng):
        from dataclasses import replace

        t, key, genesis = tangle
        tx = issue_transaction(key, genesis.tx_hash, genesis.tx_hash, b"a", 1.0)
        forged = replace(tx, public_key=KeyPair.generate(rng).public_key)
        with pytest.raises(ValidationError):
            t.attach(forged)

    def test_work_required_when_configured(self, rng):
        t = Tangle(work_difficulty=2**14)
        key = KeyPair.generate(rng)
        genesis = t.create_genesis(key)
        lazy = issue_transaction(
            key, genesis.tx_hash, genesis.tx_hash, b"spam", 1.0, work_difficulty=1
        )
        with pytest.raises(ValidationError):
            t.attach(lazy)
        diligent = issue_transaction(
            key, genesis.tx_hash, genesis.tx_hash, b"ok", 1.0,
            work_difficulty=2**14,
        )
        t.attach(diligent)

    def test_growth_keeps_dag_acyclic(self, tangle, rng):
        t, key, _ = tangle
        grow(t, key, 60, rng)
        order = t._topological_order()
        assert len(order) == len(t)


class TestWeights:
    def test_genesis_weight_counts_everything(self, tangle, rng):
        t, key, genesis = tangle
        grow(t, key, 30, rng)
        assert t.cumulative_weight(genesis.tx_hash) == 31

    def test_tip_weight_is_one(self, tangle, rng):
        t, key, _ = tangle
        grow(t, key, 20, rng)
        tip = t.tips()[0]
        assert t.cumulative_weight(tip) == 1

    def test_weight_monotone_under_growth(self, tangle, rng):
        t, key, _ = tangle
        (first,) = grow(t, key, 1, rng)
        before = t.cumulative_weight(first.tx_hash)
        grow(t, key, 20, rng)
        assert t.cumulative_weight(first.tx_hash) >= before

    def test_bulk_weights_match_individual(self, tangle, rng):
        t, key, _ = tangle
        grow(t, key, 25, rng)
        bulk = t._all_cumulative_weights()
        for tx_hash, weight in bulk.items():
            assert weight == t.cumulative_weight(tx_hash)

    def test_past_cone_contains_genesis(self, tangle, rng):
        t, key, genesis = tangle
        txs = grow(t, key, 15, rng)
        assert genesis.tx_hash in t.past_cone(txs[-1].tx_hash)


class TestTipSelection:
    def test_uniform_selection_returns_tips(self, tangle, rng):
        t, key, _ = tangle
        grow(t, key, 20, rng)
        trunk, branch = t.select_tips_uniform(rng)
        assert trunk in set(t.tips()) and branch in set(t.tips())

    def test_mcmc_walk_ends_at_a_tip(self, tangle, rng):
        t, key, _ = tangle
        grow(t, key, 30, rng)
        trunk, branch = t.select_tips_mcmc(rng, alpha=0.05)
        tips = set(t.tips())
        assert trunk in tips and branch in tips

    def test_high_alpha_prefers_heavy_subtangle(self, tangle, rng):
        """Build two branches off genesis: one heavy (many approvals),
        one a lone lazy tip.  A high-alpha walk should essentially never
        pick the lazy tip."""
        t, key, genesis = tangle
        lazy = issue_transaction(key, genesis.tx_hash, genesis.tx_hash, b"lazy", 1.0)
        t.attach(lazy)
        heavy_root = issue_transaction(
            key, genesis.tx_hash, genesis.tx_hash, b"heavy", 1.1
        )
        t.attach(heavy_root)
        current = heavy_root
        for i in range(15):  # a heavy chain on top of heavy_root
            nxt = issue_transaction(
                key, current.tx_hash, current.tx_hash, f"h{i}".encode(), 2.0 + i
            )
            t.attach(nxt)
            current = nxt
        picks = [t.select_tips_mcmc(rng, alpha=2.0)[0] for _ in range(40)]
        assert picks.count(lazy.tx_hash) == 0

    def test_lazy_tips_detected(self, tangle, rng):
        t, key, genesis = tangle
        lazy = issue_transaction(key, genesis.tx_hash, genesis.tx_hash, b"lazy", 1.0)
        t.attach(lazy)
        heavy = issue_transaction(key, genesis.tx_hash, genesis.tx_hash, b"h", 1.1)
        t.attach(heavy)
        for i in range(5):
            tx = issue_transaction(key, heavy.tx_hash, heavy.tx_hash, bytes([i]), 2.0 + i)
            t.attach(tx)
            heavy = tx
        assert lazy.tx_hash in t.left_behind_tips()


class TestConfidence:
    def test_old_transactions_reach_full_confidence(self, tangle, rng):
        t, key, _ = tangle
        txs = grow(t, key, 40, rng)
        early = txs[0]
        confidence = t.confirmation_confidence(early.tx_hash, rng, samples=30)
        assert confidence == 1.0

    def test_fresh_tip_has_low_confidence(self, tangle, rng):
        t, key, genesis = tangle
        grow(t, key, 30, rng)
        # A brand-new tip attached at the side.
        newcomer = issue_transaction(
            key, genesis.tx_hash, genesis.tx_hash, b"new", 99.0
        )
        t.attach(newcomer)
        # A weight-biased walk (alpha=0.5) almost never ends at the
        # weight-1 newcomer next to a 30-deep subtangle.
        confidence = t.confirmation_confidence(
            newcomer.tx_hash, rng, samples=30, alpha=0.5
        )
        assert confidence < 0.5

    def test_confidence_grows_with_approvals(self, tangle, rng):
        t, key, _ = tangle
        (target,) = grow(t, key, 1, rng)
        low = t.confirmation_confidence(target.tx_hash, rng, samples=30)
        grow(t, key, 30, rng)  # new txs approve (directly or not) the target
        high = t.confirmation_confidence(target.tx_hash, rng, samples=30)
        assert high >= low
        assert high > 0.9

    def test_unknown_tx_confidence_raises(self, tangle, rng):
        t, _, _ = tangle
        with pytest.raises(UnknownParentError):
            t.confirmation_confidence(Hash(b"\x02" * 32), rng)
