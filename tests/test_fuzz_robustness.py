"""Fuzz tests: untrusted bytes must fail cleanly, never crash.

Nodes consume attacker-controlled bytes (blocks, transactions, votes on
the wire) and attacker-controlled programs (contract code).  Whatever
the input, the library must either succeed or raise its own error
types — no unhandled exceptions, no hangs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ReproError
from repro.blockchain import codec as bc_codec
from repro.blockchain.vm import ExecutionContext, ExecutionResult, execute
from repro.dag.codec import decode_nano_block

CLEAN_FAILURES = (ReproError, ValueError)


class TestVmFuzz:
    @settings(max_examples=200, deadline=None)
    @given(code=st.binary(max_size=200))
    def test_arbitrary_code_never_crashes(self, code):
        """Any byte string is a 'program'; execution always returns a
        result (success or clean failure) within the gas budget."""
        result = execute(
            code, gas_limit=10_000, context=ExecutionContext(caller=1, call_value=0)
        )
        assert isinstance(result, ExecutionResult)
        assert result.gas_used <= 10_000

    @settings(max_examples=100, deadline=None)
    @given(code=st.binary(max_size=64), gas=st.integers(min_value=0, max_value=500))
    def test_tiny_gas_budgets_terminate(self, code, gas):
        result = execute(code, gas, ExecutionContext(caller=0, call_value=0))
        assert result.gas_used <= max(gas, 0) or not result.success


class TestCodecFuzz:
    @settings(max_examples=150, deadline=None)
    @given(data=st.binary(max_size=300))
    def test_transaction_decoder(self, data):
        try:
            bc_codec.decode_transaction(data)
        except CLEAN_FAILURES:
            pass

    @settings(max_examples=150, deadline=None)
    @given(data=st.binary(max_size=300))
    def test_account_transaction_decoder(self, data):
        try:
            bc_codec.decode_account_transaction(data)
        except CLEAN_FAILURES:
            pass

    @settings(max_examples=150, deadline=None)
    @given(data=st.binary(max_size=400))
    def test_header_decoder(self, data):
        try:
            bc_codec.decode_header(data)
        except CLEAN_FAILURES:
            pass

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(max_size=500))
    def test_block_decoder(self, data):
        try:
            bc_codec.decode_block(data)
        except CLEAN_FAILURES:
            pass

    @settings(max_examples=150, deadline=None)
    @given(data=st.binary(max_size=300))
    def test_nano_block_decoder(self, data):
        try:
            decode_nano_block(data)
        except CLEAN_FAILURES:
            pass

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(max_size=100))
    def test_receipt_decoder(self, data):
        try:
            bc_codec.decode_receipt(data)
        except CLEAN_FAILURES:
            pass


class TestNodeIngestFuzz:
    def test_corrupted_block_flood_does_not_poison_a_node(self, rng):
        """A node fed mutated copies of a valid nano block rejects or
        parks them all and keeps serving the honest ledger."""
        import random as _r

        from repro.dag.bootstrap import build_nano_testbed, fund_accounts
        from repro.dag.codec import decode_nano_block as decode
        from repro.net.message import Message

        tb = build_nano_testbed(node_count=3, representative_count=1, seed=8)
        users = fund_accounts(tb, 2, 10**6, settle_time=1.0)
        victim = tb.nodes[0]
        honest = victim.lattice.chain(users[0].address).head
        raw = bytearray(honest.serialize())
        mutator = _r.Random(0)
        for _ in range(100):
            corrupted = bytearray(raw)
            for _ in range(mutator.randint(1, 4)):
                corrupted[mutator.randrange(len(corrupted))] ^= mutator.randrange(1, 256)
            try:
                block = decode(bytes(corrupted))
            except CLEAN_FAILURES:
                continue
            victim.deliver(
                "attacker",
                Message(kind="nano_block", payload=block,
                        size_bytes=block.size_bytes, dedup_key=block.block_hash),
            )
        tb.simulator.run(until=tb.simulator.now + 5)
        # The honest ledger is intact and supply unchanged.
        assert victim.lattice.balance(users[0].address) == 10**6
        assert victim.lattice.total_supply() == 10**15
