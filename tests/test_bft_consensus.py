"""Byzantine behaviour of the quorum-certificate engine (ISSUE 7).

The classical BFT claims, checked against the HotStuff-style engine:

* honest runs commit identically on every replica;
* an equivocating leader at f < n/3 is detected and contained — the
  conflicting sibling never enters any committed prefix;
* with f >= n/3 (two colluders and a weakened quorum) the classical
  safety violation *does* happen, and the audit catches it — the
  seeded-violation oracle for the ``byzantine-violation`` fuzz profile;
* crashing a leader trips the view timeout and liveness resumes;
* replays are bit-identical (the fuzzer's replay oracle covers bft).
"""

import pytest

from repro.check.generator import generate_schedule, profile_named
from repro.check.runner import run_schedule
from repro.core.deploy import build_deployment
from repro.faults import ByzantineSpec
from repro.workloads.generators import PaymentEvent

ACCOUNTS = 4
FUNDING = 1_000_000


def _run_payments(deployment, count, gap_s=2.0, settle_s=30.0):
    ledger = deployment.ledger
    entries = []
    for i in range(count):
        entry = ledger.submit(PaymentEvent(
            time_s=ledger.now(), sender_index=i % ACCOUNTS,
            recipient_index=(i + 1) % ACCOUNTS, amount=5 + i,
        ))
        if entry is not None:
            entries.append(entry)
        ledger.advance(gap_s)
    ledger.advance(settle_s)
    return entries


def test_honest_run_commits_identically():
    deployment = build_deployment("bft", seed=7)
    deployment.setup(ACCOUNTS, FUNDING)
    entries = _run_payments(deployment, 8)

    assert entries, "payments must be accepted"
    assert all(deployment.ledger.is_confirmed(e) for e in entries)
    heights = {tuple(n.committed) for n in deployment.nodes}
    assert len(heights) == 1, "every replica commits the same sequence"
    audit = deployment.ledger.audit()
    assert audit is not None and audit.ok, audit


def test_equivocation_detected_and_contained_below_threshold():
    # 1 Byzantine replica of 4: f = (4-1)//3 = 1, quorum = 3.  Only one
    # sibling of each equivocating pair can gather a certificate.
    deployment = build_deployment(
        "bft", seed=9,
        faults=ByzantineSpec(count=1, behavior="equivocate"),
    )
    deployment.setup(ACCOUNTS, FUNDING)
    _run_payments(deployment, 8, settle_s=40.0)

    nodes = deployment.nodes
    sent = sum(n.stats.equivocations_sent for n in nodes)
    detected = sum(n.stats.equivocations_detected for n in nodes)
    assert sent > 0, "the marked replica never got to equivocate"
    assert detected > 0, "honest replicas must flag the sibling proposals"
    audit = deployment.ledger.audit()
    assert audit is not None and audit.ok, audit
    assert len({tuple(n.committed) for n in nodes}) == 1


def test_safety_violation_at_threshold_is_flagged():
    # 2 colluders of 4 with the quorum dropped to n - 2 = 2: each
    # colluder can certify a sibling from its own votes and split the
    # roster's committed prefixes — the classical f >= n/3 break.
    deployment = build_deployment(
        "bft", seed=9,
        faults=ByzantineSpec(count=2, behavior="equivocate", f_override=2),
    )
    deployment.setup(ACCOUNTS, FUNDING)
    _run_payments(deployment, 10, settle_s=40.0)

    audit = deployment.ledger.audit()
    assert audit is not None and not audit.ok
    assert any(v.invariant == "safety" for v in audit.violations), audit


def test_view_change_restores_liveness_after_leader_crash():
    deployment = build_deployment("bft", seed=5, view_timeout_s=3.0)
    deployment.setup(ACCOUNTS, FUNDING)
    ledger = deployment.ledger
    injector = deployment.fault_injector()
    _run_payments(deployment, 3, settle_s=5.0)

    victim = deployment.nodes[1]
    committed_before = max(len(n.committed) for n in deployment.nodes)
    injector.crash(victim.node_id)
    ledger.advance(12.0)  # several view timeouts with the victim down
    injector.restart(victim.node_id)
    _run_payments(deployment, 3, settle_s=30.0)

    timeouts = sum(n.stats.timeouts for n in deployment.nodes)
    assert timeouts > 0, "the dead leader's views must time out"
    committed_after = max(len(n.committed) for n in deployment.nodes)
    assert committed_after > committed_before, "commits must resume"
    audit = ledger.audit()
    assert audit is not None and audit.ok, audit


def test_withholding_leader_stalls_views_not_safety():
    deployment = build_deployment(
        "bft", seed=3,
        faults=ByzantineSpec(count=1, behavior="withhold"),
    )
    deployment.setup(ACCOUNTS, FUNDING)
    _run_payments(deployment, 6, settle_s=40.0)

    withheld = sum(n.stats.votes_withheld for n in deployment.nodes)
    assert withheld > 0, "the marked replica must actually withhold"
    audit = deployment.ledger.audit()
    assert audit is not None and audit.ok, audit


def test_byzantine_profile_green_below_threshold():
    profile = profile_named("byzantine", duration_s=40.0, settle_s=30.0)
    result = run_schedule(generate_schedule(2, profile), "bft")
    assert result.ok, result.violation


def test_byzantine_violation_profile_trips_safety():
    profile = profile_named("byzantine-violation",
                            duration_s=40.0, settle_s=30.0)
    result = run_schedule(generate_schedule(2, profile), "bft")
    assert not result.ok
    assert any(v.invariant == "safety"
               for v in result.violation.violations), result.violation


@pytest.mark.parametrize("profile_name", ["byzantine", "byzantine-violation"])
def test_replay_determinism_fingerprint(profile_name):
    profile = profile_named(profile_name, duration_s=30.0, settle_s=20.0)
    schedule = generate_schedule(4, profile)
    first = run_schedule(schedule, "bft")
    second = run_schedule(schedule, "bft")
    assert first.fingerprint == second.fingerprint
