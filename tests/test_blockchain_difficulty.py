"""Tests for repro.blockchain.difficulty (Section VI-A retargeting)."""

import pytest

from repro.crypto.pow import MAX_TARGET
from repro.blockchain.difficulty import (
    bitcoin_retarget,
    epoch_duration,
    ethereum_adjust,
    simulated_difficulty_for_interval,
)


class TestBitcoinRetarget:
    def test_on_schedule_keeps_target(self):
        target = MAX_TARGET // 1000
        assert bitcoin_retarget(target, 600.0, 600.0) == target

    def test_fast_epoch_raises_difficulty(self):
        target = MAX_TARGET // 1000
        new = bitcoin_retarget(target, 300.0, 600.0)
        assert new == target // 2  # target halves, difficulty doubles

    def test_slow_epoch_lowers_difficulty(self):
        target = MAX_TARGET // 1000
        new = bitcoin_retarget(target, 1200.0, 600.0)
        assert new == target * 2

    def test_clamped_to_4x(self):
        target = MAX_TARGET // 1000
        assert bitcoin_retarget(target, 1.0, 600.0) == target // 4
        assert bitcoin_retarget(target, 10**9, 600.0) == target * 4

    def test_never_exceeds_max_target(self):
        assert bitcoin_retarget(MAX_TARGET, 2400.0, 600.0) == MAX_TARGET

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bitcoin_retarget(0, 600, 600)
        with pytest.raises(ValueError):
            bitcoin_retarget(MAX_TARGET, 600, 0)

    def test_convergence_under_hashrate_growth(self):
        """Difficulty tracks a 10x hashrate increase: the interval returns
        to target — the Section VI-A point that more nodes do not mean
        more throughput."""
        target = MAX_TARGET // 1_000
        hashrate = 1_000.0
        for _ in range(30):
            difficulty = MAX_TARGET / target
            interval = difficulty / hashrate  # seconds per block
            epoch = interval * 2016
            target = bitcoin_retarget(target, epoch, 600.0 * 2016)
            hashrate = 10_000.0  # stepped up once
        final_interval = (MAX_TARGET / target) / hashrate
        assert final_interval == pytest.approx(600.0, rel=0.05)


class TestEthereumAdjust:
    def test_fast_parent_raises_difficulty(self):
        target = MAX_TARGET // 1000
        assert ethereum_adjust(target, 10.0, 15.0) < target

    def test_slow_parent_lowers_difficulty(self):
        target = MAX_TARGET // 1000
        assert ethereum_adjust(target, 20.0, 15.0) > target

    def test_on_time_parent_keeps_target(self):
        target = MAX_TARGET // 1000
        assert ethereum_adjust(target, 15.0, 15.0) == target

    def test_step_is_one_2048th(self):
        target = 2048 * 10**6
        assert ethereum_adjust(target, 10.0, 15.0) == target - target // 2048


class TestHelpers:
    def test_epoch_duration(self):
        assert epoch_duration([0.0, 5.0, 11.0]) == 11.0

    def test_epoch_duration_needs_two(self):
        with pytest.raises(ValueError):
            epoch_duration([1.0])

    def test_planning_arithmetic(self):
        assert simulated_difficulty_for_interval(100.0, 600.0) == 60_000.0

    def test_planning_validates(self):
        with pytest.raises(ValueError):
            simulated_difficulty_for_interval(0, 600)
