"""Integration tests: smart contracts inside AccountState (§VI-A)."""

import pytest

from repro.common.errors import InsufficientFundsError
from repro.common.types import Address
from repro.crypto.keys import KeyPair
from repro.blockchain.state import (
    AccountState,
    contract_address,
    encode_call_args,
)
from repro.blockchain.transaction import sign_account_transaction
from repro.blockchain.vm import counter_contract, vault_contract


@pytest.fixture
def world(rng):
    """(state, alice, miner) with alice holding plenty of funds."""
    state = AccountState()
    alice = KeyPair.generate(rng)
    miner = KeyPair.generate(rng)
    state.credit(alice.address, 10**12)
    return state, alice, miner


def deploy(state, sender, miner, code, value=0, gas_limit=200_000):
    tx = sign_account_transaction(
        sender, nonce=state.nonce(sender.address), recipient=Address.zero(),
        value=value, gas_limit=gas_limit, gas_price=1, data=code,
    )
    receipt = state.apply_transaction(tx, miner.address)
    return contract_address(sender.address, tx.nonce), receipt


def call(state, sender, miner, target, value=0, args=b"", gas_limit=100_000):
    tx = sign_account_transaction(
        sender, nonce=state.nonce(sender.address), recipient=target,
        value=value, gas_limit=gas_limit, gas_price=1, data=args,
    )
    return state.apply_transaction(tx, miner.address)


class TestDeployment:
    def test_deploy_creates_contract_account(self, world):
        state, alice, miner = world
        address, receipt = deploy(state, alice, miner, counter_contract())
        assert receipt.success
        assert state.account(address).is_contract
        assert state.code(address) == counter_contract()

    def test_deploy_gas_includes_code_deposit(self, world):
        state, alice, miner = world
        _, receipt = deploy(state, alice, miner, counter_contract())
        from repro.blockchain.gas import intrinsic_gas
        from repro.blockchain.state import CODE_DEPOSIT_GAS_PER_BYTE, CREATE_GAS

        code = counter_contract()
        assert receipt.gas_used > CREATE_GAS + len(code) * CODE_DEPOSIT_GAS_PER_BYTE

    def test_deploy_out_of_gas_fails_burning_limit(self, world):
        state, alice, miner = world
        balance_before = state.balance(alice.address)
        address, receipt = deploy(
            state, alice, miner, counter_contract(), gas_limit=40_000
        )
        assert not receipt.success
        assert not state.account(address).is_contract
        # The whole gas limit was burned and paid to the miner.
        assert state.balance(miner.address) == 40_000
        assert state.balance(alice.address) == balance_before - 40_000

    def test_deploy_with_endowment(self, world):
        state, alice, miner = world
        address, receipt = deploy(
            state, alice, miner, counter_contract(), value=5_000
        )
        assert state.balance(address) == 5_000

    def test_contract_addresses_unique_per_nonce(self, world):
        state, alice, miner = world
        a1, _ = deploy(state, alice, miner, counter_contract())
        a2, _ = deploy(state, alice, miner, counter_contract())
        assert a1 != a2


class TestCalls:
    def test_counter_increments_across_transactions(self, world):
        state, alice, miner = world
        address, _ = deploy(state, alice, miner, counter_contract())
        for expected in (1, 2, 3):
            receipt = call(state, alice, miner, address)
            assert receipt.success
            assert state.storage(address, 0) == expected

    def test_call_with_arguments(self, world):
        state, alice, miner = world
        address, _ = deploy(state, alice, miner, counter_contract())
        call(state, alice, miner, address, args=encode_call_args(10))
        assert state.storage(address, 0) == 11

    def test_vault_accepts_value(self, world):
        state, alice, miner = world
        address, _ = deploy(state, alice, miner, vault_contract())
        call(state, alice, miner, address, value=700)
        call(state, alice, miner, address, value=300)
        assert state.balance(address) == 1_000
        assert state.storage(address, 0) == 1_000

    def test_reverted_call_moves_no_value(self, world):
        state, alice, miner = world
        address, _ = deploy(state, alice, miner, vault_contract())
        balance_before = state.balance(alice.address)
        receipt = call(state, alice, miner, address, value=0)  # vault reverts
        assert not receipt.success
        assert state.balance(address) == 0
        assert state.storage(address, 0) == 0
        # Sender lost only the gas fee, nothing else; nonce advanced.
        assert state.balance(alice.address) == balance_before - receipt.gas_used

    def test_failed_call_still_advances_nonce(self, world):
        state, alice, miner = world
        address, _ = deploy(state, alice, miner, vault_contract())
        nonce_before = state.nonce(alice.address)
        call(state, alice, miner, address, value=0)
        assert state.nonce(alice.address) == nonce_before + 1

    def test_out_of_gas_call_burns_gas_limit(self, world):
        state, alice, miner = world
        address, _ = deploy(state, alice, miner, counter_contract())
        miner_before = state.balance(miner.address)
        receipt = call(state, alice, miner, address, gas_limit=21_300)
        assert not receipt.success
        assert state.storage(address, 0) == 0
        assert state.balance(miner.address) == miner_before + 21_300

    def test_gas_refund_for_unused_allowance(self, world):
        state, alice, miner = world
        bob = Address(b"\x09" * 20)
        balance_before = state.balance(alice.address)
        tx = sign_account_transaction(
            alice, nonce=0, recipient=bob, value=100,
            gas_limit=90_000, gas_price=1,  # far above the 21k needed
        )
        receipt = state.apply_transaction(tx, miner.address)
        assert receipt.gas_used == 21_000
        assert state.balance(alice.address) == balance_before - 100 - 21_000

    def test_upfront_allowance_must_be_affordable(self, world, rng):
        state, alice, miner = world
        pauper = KeyPair.generate(rng)
        state.credit(pauper.address, 25_000)
        tx = sign_account_transaction(
            pauper, nonce=0, recipient=alice.address, value=1,
            gas_limit=90_000, gas_price=1,
        )
        with pytest.raises(InsufficientFundsError):
            state.apply_transaction(tx, miner.address)


class TestStateCommitment:
    def test_storage_in_state_root(self, world):
        state, alice, miner = world
        address, _ = deploy(state, alice, miner, counter_contract())
        root_before = state.root_hash
        call(state, alice, miner, address)
        assert state.root_hash != root_before

    def test_rollback_undoes_contract_effects(self, world):
        state, alice, miner = world
        address, _ = deploy(state, alice, miner, counter_contract())
        checkpoint = state.checkpoint()
        call(state, alice, miner, address)
        assert state.storage(address, 0) == 1
        state.rollback_to(checkpoint)
        assert state.storage(address, 0) == 0

    def test_supply_conserved_through_contract_traffic(self, world):
        state, alice, miner = world
        address, _ = deploy(state, alice, miner, vault_contract())
        for value in (100, 0, 250):  # includes one revert
            call(state, alice, miner, address, value=value)
        assert state.total_supply() == 10**12
