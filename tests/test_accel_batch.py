"""The batch tier: burst verification, sigcache bounds, batch ingest.

Everything here pins the batch/accelerated paths to the scalar reference
semantics: :func:`verify_signatures_batch` must agree item-for-item with
:func:`verify_signature` on arbitrary mixed bursts, the sigcache must
stay bounded under overflow (chunk eviction, not wholesale clears),
``ingest_batch`` must converge to the same ledger as scalar ingest in
any arrival order, and a full simulation must produce byte-identical
metrics under ``REPRO_ACCEL=auto`` and ``REPRO_ACCEL=off``.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from dataclasses import dataclass

import pytest

import repro.crypto.keys as keys
from repro.common.memo import cached
from repro.crypto import accel
from repro.crypto.keys import (
    KeyPair,
    clear_sigcache,
    sigcache_counters,
    verify_signature,
    verify_signatures_batch,
)


@pytest.fixture(autouse=True)
def _fresh_sigcache():
    clear_sigcache()
    yield
    clear_sigcache()


def _burst(seed: int, n: int = 120):
    """A mixed burst: valid / tampered signature / tampered message /
    unregistered key / wrong-length signature / in-burst duplicates."""
    rng = random.Random(seed)
    signers = [KeyPair.generate(rng) for _ in range(5)]
    stranger_pk = rng.getrandbits(256).to_bytes(32, "big")  # never registered
    items = []
    for i in range(n):
        key = signers[i % len(signers)]
        message = b"burst:%d:%d" % (seed, i)
        signature = key.sign(message)
        flavor = i % 6
        if flavor == 1:  # tampered signature
            signature = bytes([signature[0] ^ 0xFF]) + signature[1:]
        elif flavor == 2:  # message swapped after signing
            message = message + b"!"
        elif flavor == 3:  # unregistered public key
            items.append((stranger_pk, message, signature))
            continue
        elif flavor == 4:  # wrong length
            signature = signature[:32]
        elif flavor == 5 and items:  # duplicate of an earlier item
            items.append(items[rng.randrange(len(items))])
            continue
        items.append((key.public_key, message, signature))
    return items


class TestBatchScalarAgreement:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_batch_matches_scalar_cold(self, seed):
        items = _burst(seed)
        clear_sigcache()
        batch = verify_signatures_batch(items)
        clear_sigcache()
        scalar = [verify_signature(*item) for item in items]
        assert batch == scalar

    def test_batch_then_scalar_is_all_hits(self):
        items = [it for it in _burst(3) if len(it[2]) == 64]
        verify_signatures_batch(items)
        before = sigcache_counters()["sigcache.misses"]
        scalar = [verify_signature(*item) for item in items]
        after = sigcache_counters()
        # Registered-key triples were all cached by the batch pass; the
        # scalar re-check may only miss on unregistered keys (never
        # cached, by design).
        registered = [it for it in items if it[0] in keys._KEY_REGISTRY]
        assert after["sigcache.misses"] == before
        assert after["sigcache.hits"] >= len(registered)
        assert scalar == verify_signatures_batch(items)

    def test_empty_and_singleton(self):
        assert verify_signatures_batch([]) == []
        key = KeyPair.from_seed(b"\x01" * 32)
        sig = key.sign(b"solo")
        assert verify_signatures_batch([(key.public_key, b"solo", sig)]) == [True]

    def test_in_burst_duplicate_verified_once(self):
        clear_sigcache()
        key = KeyPair.from_seed(b"\x02" * 32)
        sig = key.sign(b"dup")
        clear_sigcache()  # drop any signer-side seeding: force a cold burst
        item = (key.public_key, b"dup", sig)
        verdicts = verify_signatures_batch([item, item, item])
        assert verdicts == [True, True, True]
        counters = sigcache_counters()
        assert counters["sigcache.misses"] == 1
        assert counters["sigcache.hits"] == 2


class TestSigcacheBounds:
    def test_overflow_evicts_chunk_not_everything(self, monkeypatch):
        monkeypatch.setattr(keys, "_SIG_CACHE_MAX", 64)
        monkeypatch.setattr(keys, "_SIG_CACHE_EVICT_CHUNK", 8)
        key = KeyPair.from_seed(b"\x03" * 32)
        for i in range(200):
            message = b"evict:%d" % i
            sig = key.sign(message)
            verify_signature(key.public_key, message, sig)
            assert len(keys._SIG_CACHE) <= 64
        counters = sigcache_counters()
        assert counters["sigcache.evictions"] > 0
        assert counters["sigcache.evictions"] % 8 == 0
        # The cache survived overflow with a warm majority, not a clear.
        assert len(keys._SIG_CACHE) > 32

    def test_counters_flow(self):
        key = KeyPair.from_seed(b"\x04" * 32)
        sig = key.sign(b"count")
        clear_sigcache()
        assert verify_signature(key.public_key, b"count", sig)
        assert verify_signature(key.public_key, b"count", sig)
        counters = sigcache_counters()
        assert counters["sigcache.misses"] == 1
        assert counters["sigcache.hits"] == 1
        assert counters["sigcache.entries"] == 1

    @pytest.mark.skipif(not accel.enabled(), reason="accelerated tier off")
    def test_signing_seeds_cache_under_accel(self):
        key = KeyPair.from_seed(b"\x05" * 32)
        sig = key.sign(b"seeded")
        counters = sigcache_counters()
        assert counters["sigcache.seeds"] >= 1
        # First-contact verification is a hit: the signer already proved
        # this triple.
        assert verify_signature(key.public_key, b"seeded", sig)
        assert sigcache_counters()["sigcache.misses"] == 0

    def test_unregistered_key_never_cached(self):
        stranger_pk = b"\x99" * 32
        assert not verify_signature(stranger_pk, b"msg", b"\x00" * 64)
        assert not verify_signatures_batch([(stranger_pk, b"msg", b"\x00" * 64)])[0]
        assert sigcache_counters()["sigcache.entries"] == 0


class TestMemoDescriptor:
    def test_computes_once_and_returns_identity(self):
        calls = []

        @dataclass(frozen=True)
        class Box:
            value: int

            @cached
            def doubled(self):
                calls.append(1)
                return self.value * 2

        box = Box(21)
        assert box.doubled == 42
        assert box.doubled is box.doubled
        assert len(calls) == 1

    def test_class_access_returns_descriptor(self):
        @dataclass(frozen=True)
        class Box:
            value: int

            @cached
            def doubled(self):
                return self.value * 2

        assert isinstance(Box.doubled, cached)

    def test_instances_do_not_share(self):
        @dataclass(frozen=True)
        class Box:
            value: int

            @cached
            def doubled(self):
                return self.value * 2

        assert Box(1).doubled == 2
        assert Box(5).doubled == 10


class TestIngestBatch:
    def _source(self, rounds: int):
        from repro.perf.suite import _build_source_lattice

        return _build_source_lattice(accounts_n=8, rounds=rounds)

    def _replica(self, params, genesis):
        from repro.dag.node import NanoNode

        replica = NanoNode("replica", params=params, auto_receive=False)
        replica.lattice.install_genesis(genesis)
        return replica

    def test_batch_matches_scalar_in_shuffled_order(self):
        params, lattice, genesis, ordered = self._source(rounds=40)
        shuffled = list(ordered)
        random.Random(9).shuffle(shuffled)

        scalar = self._replica(params, genesis)
        for block in shuffled:
            scalar.ingest_quietly(block)
        batched = self._replica(params, genesis)
        batched.ingest_batch(
            shuffled, skip=lambda b: b.block_hash in batched.lattice
        )

        assert scalar.lattice.block_count() == lattice.block_count()
        assert batched.lattice.block_count() == lattice.block_count()
        assert len(scalar.intake) == 0
        assert len(batched.intake) == 0

    def test_retry_cascade_survives_thousands_of_parked_blocks(self):
        """Regression: the revival cascade is iterative, so a burst that
        parks every block behind one dependency (newest-first arrival)
        must integrate without tripping the interpreter recursion limit
        (~1200 blocks ≈ 3600 frames under the old mutual recursion)."""
        params, lattice, genesis, ordered = self._source(rounds=600)
        replica = self._replica(params, genesis)
        for block in reversed(ordered):
            replica.ingest_quietly(block)
        assert replica.lattice.block_count() == lattice.block_count()
        assert len(replica.intake) == 0

    def test_batch_returns_direct_integrations(self):
        params, lattice, genesis, ordered = self._source(rounds=10)
        replica = self._replica(params, genesis)
        integrated = replica.ingest_batch(
            ordered, skip=lambda b: b.block_hash in replica.lattice
        )
        # Dependency-safe order: every block integrates directly.
        assert integrated == len(ordered)
        assert replica.lattice.block_count() == lattice.block_count()


class TestDeliveryCoalescing:
    def _fingerprint(self, coalesce: bool, seed: int = 13):
        from repro.net.link import LinkParams
        from repro.net.message import Message
        from repro.net.network import Network, RetransmitPolicy
        from repro.net.node import NetworkNode
        from repro.net.topology import small_world_topology
        from repro.sim.simulator import Simulator

        link = LinkParams(latency_s=0.05, jitter_s=0.02,
                          bandwidth_bps=50_000_000.0, loss_probability=0.08)
        sim = Simulator(seed=seed)
        net = Network(sim, retransmit=RetransmitPolicy(max_attempts=4),
                      coalesce=coalesce)
        nodes = small_world_topology(net, 12, NetworkNode,
                                     link_params=link, seed=seed)
        for i in range(30):
            origin = nodes[i % len(nodes)]
            message = Message(kind="blk", payload=i, size_bytes=300)
            sim.schedule_at(
                (i // len(nodes)) * 0.25,  # same-timestamp bursts
                (lambda o=origin, m=message: net.gossip(o.node_id, m)),
            )
        sim.run()
        return {
            "events": sim.events_processed,
            "now": round(sim.now, 9),
            "delivered": net.messages_delivered,
            "lost": net.messages_lost,
            "bytes": net.bytes_transferred,
            "received": sum(n.messages_received for n in nodes),
        }

    def test_coalesced_equals_uncoalesced(self):
        assert self._fingerprint(coalesce=True) == self._fingerprint(coalesce=False)

    def test_coalesced_is_deterministic(self):
        assert self._fingerprint(coalesce=True) == self._fingerprint(coalesce=True)


@pytest.mark.slow
class TestAccelModeEquivalence:
    """A whole simulation must not notice the tier: same metrics, byte
    for byte, under ``REPRO_ACCEL=auto`` and ``REPRO_ACCEL=off``."""

    _SCRIPT = """
import json
from repro.core.experiment import EXPERIMENTS
runner = EXPERIMENTS["E14"].load_runner()
result = runner({"offered_tps": 40.0, "processing_tps": 0.0,
                 "duration_s": 6.0}, 5)
print(json.dumps(result["metrics"], sort_keys=True))
"""

    def _run(self, mode: str) -> dict:
        env = dict(os.environ, REPRO_ACCEL=mode)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", self._SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        return json.loads(proc.stdout)

    def test_auto_and_off_agree(self):
        assert self._run("auto") == self._run("off")
