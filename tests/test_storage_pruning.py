"""Tests for repro.storage: sizing, Bitcoin pruning, Ethereum fast sync."""

import pytest

from repro.common.errors import PrunedHistoryError
from repro.crypto.keys import KeyPair
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import assemble_block, build_genesis_block
from repro.blockchain.chain import ChainStore
from repro.blockchain.state import AccountState
from repro.blockchain.transaction import make_coinbase, sign_account_transaction
from repro.storage.fast_sync import fast_sync, prune_state_deltas
from repro.storage.pruning import PruneResult, prune_chain, pruned_view
from repro.storage.sizing import (
    blockchain_size_report,
    dag_size_report,
    per_transaction_bytes,
)


def build_chain(keypair, blocks=30, txs_per_block=3):
    genesis = build_genesis_block(keypair.address, 10**9)
    store = ChainStore(genesis)
    parent = genesis
    for height in range(1, blocks + 1):
        body = [make_coinbase(keypair.address, 50, nonce=height * 100 + i)
                for i in range(txs_per_block)]
        block = assemble_block(parent.header, body, float(height), MAX_TARGET)
        store.add_block(block)
        parent = block
    return store


class TestSizeReports:
    def test_blockchain_report_components(self, keypair):
        store = build_chain(keypair, blocks=10)
        report = blockchain_size_report(store)
        assert report.components["headers"] > 0
        assert report.components["tx_bodies"] > report.components["headers"]
        assert report.total_bytes == store.total_size_bytes()

    def test_dag_report(self, funded_lattice):
        lattice, *_ = funded_lattice
        report = dag_size_report(lattice)
        assert report.total_bytes == lattice.serialized_size()
        from repro.dag.blocks import NanoBlock

        assert report.components["signatures_and_work"] == (
            NanoBlock.AUTH_OVERHEAD_BYTES * lattice.block_count()
        )

    def test_per_transaction_bytes(self, keypair):
        store = build_chain(keypair, blocks=10)
        report = blockchain_size_report(store)
        per_tx = per_transaction_bytes(report, tx_count=31)
        assert per_tx == pytest.approx(report.total_bytes / 31)

    def test_render(self, keypair):
        store = build_chain(keypair, blocks=3)
        text = blockchain_size_report(store).render()
        assert "headers" in text and "tx_bodies" in text


class TestBitcoinPruning:
    def test_prune_frees_old_bodies_keeps_headers(self, keypair):
        store = build_chain(keypair, blocks=30)
        result = prune_chain(store, keep_depth=5)
        assert result.blocks_pruned == 26  # genesis..height 25
        assert result.bytes_freed > 0
        assert result.size_after == result.size_before - result.bytes_freed
        # Headers intact: chain still walks.
        assert store.block_at_height(0).header is not None
        assert store.block_at_height(0).transactions == ()

    def test_recent_window_retained(self, keypair):
        store = build_chain(keypair, blocks=30)
        prune_chain(store, keep_depth=5)
        for height in range(26, 31):
            assert store.block_at_height(height).transactions != ()

    def test_pruned_node_cannot_serve_history(self, keypair):
        """Section V-A: "other nodes are no longer able to download the
        entire history of a pruned node"."""
        store = build_chain(keypair, blocks=30)
        result = prune_chain(store, keep_depth=5)
        view = pruned_view(store, result)
        assert not view.can_serve_full_history()
        with pytest.raises(PrunedHistoryError):
            view.get_block_body(store.block_at_height(0).block_id)
        # Recent blocks still served.
        assert view.get_block_body(store.block_at_height(29).block_id)

    def test_double_prune_idempotent(self, keypair):
        store = build_chain(keypair, blocks=30)
        prune_chain(store, keep_depth=5)
        second = prune_chain(store, keep_depth=5)
        assert second.bytes_freed == 0

    def test_keep_depth_validated(self, keypair):
        store = build_chain(keypair, blocks=5)
        with pytest.raises(ValueError):
            prune_chain(store, keep_depth=0)

    def test_fraction_freed(self):
        result = PruneResult(1, 400, 1, 1000, 600)
        assert result.fraction_freed == pytest.approx(0.4)


class TestFastSync:
    def build_account_chain(self, rng, blocks=20):
        alice, bob, miner = (KeyPair.generate(rng) for _ in range(3))
        genesis = build_genesis_block(miner.address, 1)
        store = ChainStore(genesis)
        state = AccountState()
        state.credit(alice.address, 10**12)
        receipts_by_block = [[]]
        parent = genesis
        for height in range(1, blocks + 1):
            tx = sign_account_transaction(
                alice, height - 1, bob.address, 100, gas_price=1
            )
            receipts, _gas = state.apply_block_transactions(
                [tx], miner.address, block_reward=0
            )
            block = assemble_block(
                parent.header, [tx], float(height), MAX_TARGET,
                state_root=state.root_hash,
            )
            store.add_block(block)
            receipts_by_block.append(receipts)
            parent = block
        return store, state, receipts_by_block

    def test_fast_sync_skips_replay(self, rng):
        store, state, receipts = self.build_account_chain(rng, blocks=20)
        result = fast_sync(store, state, receipts, pivot_offset=5)
        assert result.pivot_height == 15
        assert result.fast_sync_txs_replayed == 5
        assert result.full_sync_txs_replayed == 21  # 20 txs + genesis coinbase
        assert result.replay_saved == 16

    def test_state_snapshot_is_live_size(self, rng):
        store, state, receipts = self.build_account_chain(rng, blocks=10)
        result = fast_sync(store, state, receipts, pivot_offset=2)
        assert result.state_snapshot_bytes == state.live_size_bytes()
        assert result.state_snapshot_bytes < state.store_size_bytes()

    def test_delta_pruning_after_sync(self, rng):
        """"The result of the mechanism is a database pruned of the state
        deltas" — pruning history shrinks the store to the live root."""
        store, state, receipts = self.build_account_chain(rng, blocks=10)
        freed = prune_state_deltas(state)
        assert freed > 0
        assert state.store_size_bytes() == state.live_size_bytes()

    def test_pivot_clamped_to_genesis(self, rng):
        store, state, receipts = self.build_account_chain(rng, blocks=3)
        result = fast_sync(store, state, receipts, pivot_offset=1024)
        assert result.pivot_height == 0
