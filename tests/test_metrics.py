"""Tests for repro.metrics (stats, collector, tables)."""

import pytest

from repro.metrics.collector import MetricCollector
from repro.metrics.stats import (
    binomial_ci,
    confidence_interval,
    percentile,
    summarize,
    windowed_rate,
)
from repro.metrics.tables import render_table


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0

    def test_extremes(self):
        values = list(range(100))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 99

    def test_single_value(self):
        assert percentile([7], 95) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.mean == 3.0
        assert stats.minimum == 1 and stats.maximum == 5
        assert stats.p50 == 3

    def test_stdev(self):
        stats = summarize([2, 2, 2])
        assert stats.stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_render(self):
        text = summarize([1.0, 2.0]).render(label="latency", unit="s")
        assert "latency" in text and "mean=1.500s" in text


class TestConfidenceIntervals:
    def test_interval_contains_mean(self):
        lo, hi = confidence_interval([1, 2, 3, 4, 5])
        assert lo < 3.0 < hi

    def test_single_sample_degenerate(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)

    def test_binomial_wilson(self):
        lo, hi = binomial_ci(50, 100)
        assert lo < 0.5 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_binomial_extremes(self):
        lo, hi = binomial_ci(0, 100)
        assert lo == 0.0 and hi < 0.1
        with pytest.raises(ValueError):
            binomial_ci(5, 0)
        with pytest.raises(ValueError):
            binomial_ci(11, 10)


class TestWindowedRate:
    def test_final_event_is_counted(self):
        """Regression: with until defaulting to max(times), the last
        event used to be filtered out by the strict ``t < until`` and
        the closing window reported a rate of zero."""
        windows = windowed_rate([1.0, 2.0, 3.0], 1.0)
        assert windows == [(1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]

    def test_edge_events_belong_to_closing_window(self):
        # Windows are half-open (lo, hi]: an event exactly on an edge
        # counts toward the window that ends there.
        windows = windowed_rate([0.0, 1.0, 1.5], 1.0, until=2.0)
        assert windows == [(1.0, 2.0), (2.0, 1.0)]

    def test_explicit_until_still_truncates(self):
        windows = windowed_rate([0.5, 1.5, 9.0], 1.0, until=2.0)
        assert windows == [(1.0, 1.0), (2.0, 1.0)]

    def test_empty_and_validation(self):
        assert windowed_rate([], 1.0) == []
        with pytest.raises(ValueError):
            windowed_rate([1.0], 0.0)


class TestCollector:
    def test_counters(self):
        collector = MetricCollector()
        collector.incr("blocks")
        collector.incr("blocks", 2)
        assert collector.counter("blocks") == 3
        assert collector.counter("missing") == 0

    def test_series_and_summary(self):
        collector = MetricCollector()
        for t, v in [(0, 1.0), (1, 2.0), (2, 3.0)]:
            collector.record("latency", t, v)
        assert collector.values("latency") == [1.0, 2.0, 3.0]
        assert collector.summary("latency").mean == 2.0

    def test_merge(self):
        a, b = MetricCollector(), MetricCollector()
        a.incr("x")
        b.incr("x", 4)
        b.record("s", 0, 1.0)
        a.merge(b)
        assert a.counter("x") == 5
        assert a.values("s") == [1.0]

    def test_merge_restores_time_order(self):
        """Regression: merging runs that overlap in time must interleave
        samples chronologically, not append one run after the other."""
        a, b = MetricCollector(), MetricCollector()
        for t in (0.0, 2.0, 4.0):
            a.record("s", t, t)
        for t in (1.0, 3.0, 5.0):
            b.record("s", t, t)
        a.merge(b)
        assert a.samples("s") == [(t, t) for t in
                                  (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)]

    def test_merge_is_stable_at_equal_times(self):
        a, b = MetricCollector(), MetricCollector()
        a.record("s", 1.0, 10.0)
        b.record("s", 1.0, 20.0)
        a.merge(b)
        assert a.samples("s") == [(1.0, 10.0), (1.0, 20.0)]

    def test_merge_counters_accumulate_across_merges(self):
        total = MetricCollector()
        for value in (1.0, 2.0, 3.0):
            shard = MetricCollector()
            shard.incr("n", value)
            total.merge(shard)
        assert total.counter("n") == 6.0

    def test_out_of_order_recording_keeps_series_sorted(self):
        collector = MetricCollector()
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            collector.record("s", t, t)
        assert [t for t, _ in collector.samples("s")] == [1, 2, 3, 4, 5]

    def test_window_query(self):
        collector = MetricCollector()
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            collector.record("s", t, t * 10)
        assert collector.window("s", 1.0, 3.0) == [(1.0, 10.0), (2.0, 20.0)]
        with pytest.raises(ValueError):
            collector.window("s", 3.0, 1.0)

    def test_ingest_tracer_snapshot(self):
        from repro.trace import REASON_LOSS, Tracer

        tracer = Tracer()
        tracer.record_schedule(0.0, "a", "b", "tx")
        tracer.record_drop(0.1, "a", "b", "tx", REASON_LOSS)
        collector = MetricCollector()
        collector.ingest_tracer(tracer)
        assert collector.counter("trace.scheduled") == 1.0
        # A second ingest overwrites rather than double-counts.
        tracer.record_schedule(0.2, "a", "b", "tx")
        tracer.record_deliver(0.3, "a", "b", "tx")
        collector.ingest_tracer(tracer)
        assert collector.counter("trace.scheduled") == 2.0
        assert collector.counter("trace.delivered") == 1.0


class TestRenderTable:
    def test_alignment_and_headers(self):
        text = render_table(["name", "tps"], [["bitcoin", 7.0], ["nano", 306.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "bitcoin" in lines[2]
        assert "306" in lines[3]

    def test_title(self):
        text = render_table(["a"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.000001], [123456.0], [1.5]])
        assert "1.00e-06" in text
        assert "123,456" in text
