"""Tests for repro.scaling.throughput (Section VI headline numbers)."""

import pytest

from repro.blockchain.params import BITCOIN, ETHEREUM, ETHEREUM_POS, SEGWIT2X
from repro.scaling.throughput import VISA_TPS, ThroughputMeter, protocol_tps_table


class TestProtocolCeilings:
    def test_bitcoin_3_to_7_tps(self):
        """Section VI-A: "limiting the Bitcoin transaction rate to between
        3 and 7 transactions per second, depending on the size of
        individual transactions"."""
        heavy_tx = BITCOIN.max_tps(avg_tx_size_bytes=550)
        light_tx = BITCOIN.max_tps(avg_tx_size_bytes=240)
        assert 2.5 <= heavy_tx <= 4
        assert 6 <= light_tx <= 8

    def test_ethereum_7_to_15_tps(self):
        """Section VI-A: gas limit / 21k gas per tx / 15 s blocks."""
        tps = ETHEREUM.max_tps()
        assert 7 <= tps <= 30
        # The paper's range corresponds to ~2-5M effective gas throughput;
        # at the 8M limit the ceiling sits above Bitcoin's by 3-5x.
        assert tps > BITCOIN.max_tps() * 3

    def test_pos_raises_ceiling(self):
        """4-second PoS blocks multiply throughput ~3.75x (Section VI-A)."""
        assert ETHEREUM_POS.max_tps() == pytest.approx(
            ETHEREUM.max_tps() * 15 / 4
        )

    def test_segwit2x_doubles_bitcoin(self):
        assert SEGWIT2X.max_tps() == pytest.approx(2 * BITCOIN.max_tps())

    def test_everything_dwarfed_by_visa(self):
        """Section VI-A: "Visa ... is able to process 56,000 TPS"."""
        table = protocol_tps_table()
        assert table["visa"] == 56_000
        for name, tps in table.items():
            if name != "visa":
                assert tps < VISA_TPS / 100


class TestThroughputMeter:
    def test_average(self):
        meter = ThroughputMeter()
        for t in range(11):
            meter.record(float(t))
        assert meter.average_tps() == pytest.approx(1.1)  # 11 events over 10s

    def test_average_with_duration(self):
        meter = ThroughputMeter()
        meter.record(0.0, count=50)
        assert meter.average_tps(duration_s=10.0) == 5.0

    def test_peak_exceeds_average_for_bursts(self):
        """The Nano shape: 306 peak vs 105.75 average (Section VI-B)."""
        meter = ThroughputMeter()
        for i in range(100):
            meter.record(i * 0.01)  # 1s burst of 100
        meter.record(100.0)  # long quiet tail
        assert meter.peak_tps(window_s=1.0) >= 100
        assert meter.average_tps() < 2.0

    def test_empty_meter(self):
        meter = ThroughputMeter()
        assert meter.average_tps() == 0.0
        assert meter.peak_tps() == 0.0
        assert meter.tps_series(1.0) == []

    def test_series_buckets(self):
        meter = ThroughputMeter()
        meter.record(0.5)
        meter.record(0.6)
        meter.record(2.5)
        series = dict(meter.tps_series(1.0))
        assert series[0.0] == 2.0
        assert series[2.0] == 1.0

    def test_series_validates_bucket(self):
        with pytest.raises(ValueError):
            ThroughputMeter().tps_series(0.0)
