"""Integration tests: Casper-style finality cementing a live chain."""

from dataclasses import replace

import pytest

from repro.common.errors import CementedBlockError
from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.finality import FinalityDriver
from repro.blockchain.node import BlockchainNode, PosSlotDriver
from repro.blockchain.params import ETHEREUM_POS
from repro.blockchain.pos import ValidatorSet


@pytest.fixture
def pos_world():
    """A 3-node PoS network plus its validator set and slot driver."""
    keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(2)]
    allocations = {kp.address: 10**9 for kp in keys}
    genesis = build_genesis_with_allocations(allocations)
    sim = Simulator(seed=0)
    net = Network(sim)
    factory = lambda nid: BlockchainNode(  # noqa: E731
        nid, ETHEREUM_POS, genesis, genesis_allocations=allocations
    )
    nodes = [
        n for n in complete_topology(net, 3, factory, FAST_LINK)
        if isinstance(n, BlockchainNode)
    ]
    validator_keys = [KeyPair.from_seed(bytes([40 + i]) * 32) for i in range(3)]
    validators = ValidatorSet()
    for i, vk in enumerate(validator_keys):
        validators.deposit(vk.address, 1_000 * (i + 1))
    slot_driver = PosSlotDriver(
        {vk.address: node for vk, node in zip(validator_keys, nodes)}, validators
    )
    return sim, nodes, validators, slot_driver


class TestFinalityDriver:
    def test_checkpoints_finalize_and_cement(self, pos_world):
        sim, nodes, validators, slots = pos_world
        slots.start(sim, until=200)
        driver = FinalityDriver(nodes, validators, epoch_length=10)
        sim.run(until=205)
        finalized = driver.run_available_epochs()
        assert finalized >= 2
        assert driver.finalized_height >= 20
        assert all(n.chain.cemented_height >= 20 for n in nodes)
        assert driver.stats.checkpoints_finalized == finalized

    def test_finalized_history_cannot_reorg(self, pos_world):
        from repro.crypto.pow import MAX_TARGET
        from repro.blockchain.block import assemble_block
        from repro.blockchain.transaction import make_coinbase

        sim, nodes, validators, slots = pos_world
        slots.start(sim, until=120)
        driver = FinalityDriver(nodes, validators, epoch_length=5)
        sim.run(until=125)
        driver.run_available_epochs()
        cemented = nodes[0].chain.cemented_height
        assert cemented >= 5

        # Build a long attacker branch from genesis and feed it in.
        key = KeyPair.from_seed(b"\x55" * 32)
        side = nodes[0].chain.genesis
        with pytest.raises(CementedBlockError):
            for n in range(nodes[0].chain.height + 5):
                block = assemble_block(
                    side.header,
                    [make_coinbase(key.address, 1, nonce=900 + n)],
                    float(n),
                    MAX_TARGET,
                )
                nodes[0].chain.add_block(block)
                side = block

    def test_low_participation_stalls_finality(self, pos_world):
        """Fewer than 2/3 of stake voting ⇒ no checkpoint justifies —
        finality is a supermajority property."""
        sim, nodes, validators, slots = pos_world
        slots.start(sim, until=120)
        sim.run(until=125)
        # Only the smallest validator votes: 1000 of 6000 stake.
        driver = FinalityDriver(
            nodes, validators, epoch_length=10, participation=0.2
        )
        finalized = driver.run_available_epochs()
        assert finalized == 0
        assert all(n.chain.cemented_height <= 0 for n in nodes)

    def test_epoch_checkpoint_lookup(self, pos_world):
        sim, nodes, validators, slots = pos_world
        slots.start(sim, until=60)
        sim.run(until=65)
        driver = FinalityDriver(nodes, validators, epoch_length=10)
        cp1 = driver.checkpoint_for_epoch(nodes[0].chain, 1)
        assert cp1 is not None and cp1.epoch == 1
        assert cp1.block_id == nodes[0].chain.block_at_height(10).block_id
        assert driver.checkpoint_for_epoch(nodes[0].chain, 999) is None

    def test_parameter_validation(self, pos_world):
        _, nodes, validators, _ = pos_world
        with pytest.raises(ValueError):
            FinalityDriver(nodes, validators, epoch_length=0)
        with pytest.raises(ValueError):
            FinalityDriver(nodes, validators, epoch_length=5, participation=1.5)
