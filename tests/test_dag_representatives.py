"""Tests for repro.dag.representatives (Section III-B weights)."""

from repro.crypto.keys import KeyPair
from repro.dag.representatives import RepresentativeLedger


def addresses(rng, n):
    return [KeyPair.generate(rng).address for _ in range(n)]


class TestWeights:
    def test_weight_is_sum_of_delegated_balances(self, rng):
        rep, a, b = addresses(rng, 3)
        ledger = RepresentativeLedger()
        ledger.set_account(a, 100, rep)
        ledger.set_account(b, 250, rep)
        assert ledger.weight(rep) == 350

    def test_balance_update_adjusts_weight(self, rng):
        rep, a = addresses(rng, 2)
        ledger = RepresentativeLedger()
        ledger.set_account(a, 100, rep)
        ledger.set_account(a, 40, rep)  # spent 60
        assert ledger.weight(rep) == 40

    def test_redelegation_moves_weight(self, rng):
        rep1, rep2, a = addresses(rng, 3)
        ledger = RepresentativeLedger()
        ledger.set_account(a, 100, rep1)
        ledger.set_account(a, 100, rep2)
        assert ledger.weight(rep1) == 0
        assert ledger.weight(rep2) == 100

    def test_remove_account(self, rng):
        rep, a = addresses(rng, 2)
        ledger = RepresentativeLedger()
        ledger.set_account(a, 100, rep)
        ledger.remove_account(a)
        assert ledger.weight(rep) == 0
        assert ledger.total_weight() == 0

    def test_total_weight(self, rng):
        rep1, rep2, a, b = addresses(rng, 4)
        ledger = RepresentativeLedger()
        ledger.set_account(a, 10, rep1)
        ledger.set_account(b, 20, rep2)
        assert ledger.total_weight() == 30

    def test_representative_of(self, rng):
        rep, a = addresses(rng, 2)
        ledger = RepresentativeLedger()
        ledger.set_account(a, 5, rep)
        assert ledger.representative_of(a) == rep


class TestOnline:
    def test_online_weight_counts_only_online(self, rng):
        rep1, rep2, a, b = addresses(rng, 4)
        ledger = RepresentativeLedger()
        ledger.set_account(a, 10, rep1)
        ledger.set_account(b, 20, rep2)
        ledger.set_online(rep1)
        assert ledger.online_weight() == 10
        ledger.set_online(rep2)
        assert ledger.online_weight() == 30

    def test_going_offline(self, rng):
        rep, a = addresses(rng, 2)
        ledger = RepresentativeLedger()
        ledger.set_account(a, 10, rep)
        ledger.set_online(rep)
        ledger.set_online(rep, online=False)
        assert ledger.online_weight() == 0
        assert not ledger.is_online(rep)
