"""Determinism of the optimized hot paths.

The event-queue/serialization/tracing optimizations must not change
*what* a simulation computes — only how fast.  The fingerprints below
were captured on the unoptimized implementation (tuple-free dataclass
heap, no memoized serialization, always-on tracing) and are asserted
byte-for-byte against the optimized code: same seeds ⇒ same event
counts, traffic metrics, and trace counters.
"""

from __future__ import annotations

import pytest

from repro.net.link import LinkParams
from repro.net.message import Message
from repro.net.network import Network, RetransmitPolicy
from repro.net.node import NetworkNode
from repro.net.topology import small_world_topology
from repro.sim.simulator import Simulator

#: A lossy WAN-ish link so the scenario exercises drops and retransmits.
LOSSY_LINK = LinkParams(latency_s=0.05, jitter_s=0.02,
                        bandwidth_bps=50_000_000.0, loss_probability=0.08)


def gossip_fingerprint(seed: int, broadcasts: int = 40, nodes_n: int = 16):
    """Run a lossy gossip flood and return everything observable about it.

    Deliberately avoids ``schedule_periodic`` so the fingerprint is
    comparable across the periodic-clamp fix.
    """
    sim = Simulator(seed=seed)
    net = Network(sim, retransmit=RetransmitPolicy(max_attempts=4))
    nodes = small_world_topology(net, nodes_n, NetworkNode,
                                 link_params=LOSSY_LINK, seed=seed)
    for i in range(broadcasts):
        origin = nodes[i % len(nodes)]
        message = Message(kind="blk", payload=i, size_bytes=300)
        sim.schedule_at(
            i * 0.25,
            (lambda o=origin, m=message: net.gossip(o.node_id, m)),
        )
    sim.run()
    tracer = net.tracer
    received = sum(n.messages_received for n in nodes)
    return {
        "events_processed": sim.events_processed,
        "now": round(sim.now, 9),
        "delivered": net.messages_delivered,
        "lost": net.messages_lost,
        "bytes": net.bytes_transferred,
        "received": received,
        "trace_scheduled": tracer.scheduled,
        "trace_delivered": tracer.delivered,
        "trace_dropped": tracer.dropped,
        "trace_retransmits": tracer.retransmits,
        "trace_give_ups": tracer.gave_up,
        "trace_emitted": tracer.emitted,
    }


#: Captured on the unoptimized implementation (pre perf-optimization PR).
GOLDEN = {
    11: {
        "events_processed": 686,
        "now": 11.11069538,
        "delivered": 600,
        "lost": 46,
        "bytes": 194400,
        "received": 600,
        "trace_scheduled": 646,
        "trace_delivered": 600,
        "trace_dropped": 46,
        "trace_retransmits": 46,
        "trace_give_ups": 0,
        "trace_emitted": 1338,
    },
    23: {
        "events_processed": 686,
        "now": 9.927515345,
        "delivered": 600,
        "lost": 46,
        "bytes": 194400,
        "received": 600,
        "trace_scheduled": 646,
        "trace_delivered": 600,
        "trace_dropped": 46,
        "trace_retransmits": 46,
        "trace_give_ups": 0,
        "trace_emitted": 1338,
    },
}


def test_same_seed_same_fingerprint():
    """Two runs with the same seed are identical in every counter."""
    assert gossip_fingerprint(seed=11) == gossip_fingerprint(seed=11)


def test_different_seeds_differ():
    a = gossip_fingerprint(seed=11)
    b = gossip_fingerprint(seed=12)
    assert a != b


@pytest.mark.parametrize("seed", sorted(GOLDEN))
def test_fingerprint_matches_unoptimized_golden(seed):
    """Byte-identical results vs. the pre-optimization implementation."""
    assert gossip_fingerprint(seed=seed) == GOLDEN[seed]


#: End-to-end experiment metrics captured on the unoptimized code with
#: the exact params/seed below.  The optimizations (and the periodic
#: clamp fix, which removes a trailing no-op tick but never an action
#: firing) must leave every metric bit-identical.
E9_GOLDEN_METRICS = {
    "bitcoin_ceiling_tps": 6.666666666666667,
    "ethereum_ceiling_tps": 25.3968253968254,
    "mempool_backlog": 1904.0,
    "mined_tps": 0.13333333333333333,
    "sim_ceiling_tps": 0.26666666666666666,
    "submitted": 1920.0,
    "visa_tps": 56000.0,
}

E14_GOLDEN_METRICS = {
    "settled_over_offered": 0.9979166666666667,
    "settled_tps": 59.875,
}


@pytest.mark.slow
def test_e9_metrics_match_unoptimized_golden():
    from repro.core.experiment import EXPERIMENTS

    result = EXPERIMENTS["E9"].load_runner()(
        {"offered_tps": 20.0, "duration_s": 120.0}, 7
    )
    assert result["metrics"] == E9_GOLDEN_METRICS


@pytest.mark.slow
def test_e14_metrics_match_unoptimized_golden():
    from repro.core.experiment import EXPERIMENTS

    result = EXPERIMENTS["E14"].load_runner()(
        {"offered_tps": 60.0, "processing_tps": 0.0, "duration_s": 8.0}, 7
    )
    assert result["metrics"] == E14_GOLDEN_METRICS
