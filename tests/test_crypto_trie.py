"""Tests for repro.crypto.trie (Ethereum state structures, Section II/V)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.trie import EMPTY_TRIE_ROOT, MerklePatriciaTrie


class TestBasicOperations:
    def test_empty_root_is_sentinel(self):
        assert MerklePatriciaTrie().root_hash == EMPTY_TRIE_ROOT

    def test_get_missing_returns_none(self):
        assert MerklePatriciaTrie().get(b"missing") is None

    def test_put_get(self):
        t = MerklePatriciaTrie()
        t.put(b"key", b"value")
        assert t.get(b"key") == b"value"

    def test_overwrite(self):
        t = MerklePatriciaTrie()
        t.put(b"k", b"v1")
        t.put(b"k", b"v2")
        assert t.get(b"k") == b"v2"

    def test_prefix_keys_coexist(self):
        t = MerklePatriciaTrie()
        t.put(b"ab", b"1")
        t.put(b"abc", b"2")
        t.put(b"a", b"3")
        assert t.get(b"ab") == b"1"
        assert t.get(b"abc") == b"2"
        assert t.get(b"a") == b"3"

    def test_contains(self):
        t = MerklePatriciaTrie()
        t.put(b"x", b"1")
        assert b"x" in t and b"y" not in t

    def test_len_counts_live_entries(self):
        t = MerklePatriciaTrie()
        for i in range(5):
            t.put(bytes([i]), b"v")
        assert len(t) == 5

    def test_items_sorted_round_trip(self):
        t = MerklePatriciaTrie()
        data = {bytes([i, j]): bytes([i + j]) for i in range(4) for j in range(4)}
        for k, v in data.items():
            t.put(k, v)
        assert dict(t.items()) == data

    def test_non_bytes_value_rejected(self):
        with pytest.raises(TypeError):
            MerklePatriciaTrie().put(b"k", "str")  # type: ignore[arg-type]


class TestDelete:
    def test_delete_restores_empty_root(self):
        t = MerklePatriciaTrie()
        t.put(b"k", b"v")
        t.delete(b"k")
        assert t.root_hash == EMPTY_TRIE_ROOT

    def test_delete_missing_is_noop(self):
        t = MerklePatriciaTrie()
        t.put(b"k", b"v")
        root = t.root_hash
        t.delete(b"missing")
        assert t.root_hash == root

    def test_delete_leaves_siblings(self):
        t = MerklePatriciaTrie()
        t.put(b"aa", b"1")
        t.put(b"ab", b"2")
        t.delete(b"aa")
        assert t.get(b"aa") is None
        assert t.get(b"ab") == b"2"


class TestRootDeterminism:
    def test_insertion_order_irrelevant(self):
        # The state-root property: same contents, same root.
        a = MerklePatriciaTrie()
        b = MerklePatriciaTrie()
        pairs = [(bytes([i]), bytes([i * 2])) for i in range(20)]
        for k, v in pairs:
            a.put(k, v)
        for k, v in reversed(pairs):
            b.put(k, v)
        assert a.root_hash == b.root_hash

    def test_delete_restores_prior_root(self):
        t = MerklePatriciaTrie()
        t.put(b"base", b"1")
        root_before = t.root_hash
        t.put(b"extra", b"2")
        t.delete(b"extra")
        assert t.root_hash == root_before

    def test_root_reflects_value_change(self):
        t = MerklePatriciaTrie()
        t.put(b"k", b"v1")
        r1 = t.root_hash
        t.put(b"k", b"v2")
        assert t.root_hash != r1


class TestHistory:
    def test_old_roots_remain_readable(self):
        t = MerklePatriciaTrie()
        t.put(b"acct", b"balance=10")
        old_root = t.root_hash
        t.put(b"acct", b"balance=20")
        view = t.checkout(old_root)
        assert view.get(b"acct") == b"balance=10"
        assert t.get(b"acct") == b"balance=20"

    def test_set_root_rolls_back(self):
        t = MerklePatriciaTrie()
        t.put(b"a", b"1")
        old = t.root_hash
        t.put(b"b", b"2")
        t.set_root(old)
        assert t.get(b"b") is None
        assert t.get(b"a") == b"1"

    def test_set_root_unknown_raises(self):
        from repro.common.types import Hash

        with pytest.raises(KeyError):
            MerklePatriciaTrie().set_root(Hash(b"\x01" * 32))

    def test_set_root_to_empty(self):
        t = MerklePatriciaTrie()
        t.put(b"a", b"1")
        t.set_root(EMPTY_TRIE_ROOT)
        assert t.get(b"a") is None

    def test_prune_keeps_current_root(self):
        t = MerklePatriciaTrie()
        for i in range(30):
            t.put(b"hot", bytes([i]))
        freed = t.prune([t.root_hash])
        assert freed > 0
        assert t.get(b"hot") == bytes([29])

    def test_prune_drops_old_versions(self):
        t = MerklePatriciaTrie()
        t.put(b"k", b"old")
        old_root = t.root_hash
        t.put(b"k", b"new")
        t.prune([t.root_hash])
        with pytest.raises(KeyError):
            t.checkout(old_root).get(b"k")

    def test_reachable_nodes_of_empty(self):
        assert MerklePatriciaTrie().reachable_nodes(EMPTY_TRIE_ROOT) == set()

    def test_store_grows_with_history(self):
        t = MerklePatriciaTrie()
        t.put(b"k", b"0")
        size_one = t.store_size_bytes()
        for i in range(10):
            t.put(b"k", bytes([i]))
        assert t.store_size_bytes() > size_one


class TestProofs:
    def test_inclusion_proof(self):
        t = MerklePatriciaTrie()
        for i in range(50):
            t.put(bytes([i]), bytes([i]))
        proof = t.prove(bytes([7]))
        assert proof.value == bytes([7])
        assert MerklePatriciaTrie.verify_proof(t.root_hash, proof)

    def test_exclusion_proof(self):
        t = MerklePatriciaTrie()
        t.put(b"present", b"1")
        proof = t.prove(b"absent")
        assert proof.value is None
        assert MerklePatriciaTrie.verify_proof(t.root_hash, proof)

    def test_proof_rejected_against_other_root(self):
        t = MerklePatriciaTrie()
        t.put(b"k", b"v")
        proof = t.prove(b"k")
        other = MerklePatriciaTrie()
        other.put(b"k", b"different")
        assert not MerklePatriciaTrie.verify_proof(other.root_hash, proof)

    def test_empty_trie_proof(self):
        t = MerklePatriciaTrie()
        proof = t.prove(b"anything")
        assert MerklePatriciaTrie.verify_proof(t.root_hash, proof)


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.binary(min_size=1, max_size=8), st.binary(min_size=1, max_size=8),
        min_size=1, max_size=40,
    ),
)
def test_trie_behaves_like_dict(model):
    """Property: after arbitrary puts, the trie equals the reference dict
    and deleting half restores exact agreement again."""
    t = MerklePatriciaTrie()
    for k, v in model.items():
        t.put(k, v)
    assert dict(t.items()) == model
    victims = list(model)[::2]
    for k in victims:
        t.delete(k)
        del model[k]
    assert dict(t.items()) == model


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=6), st.binary(min_size=1, max_size=4)),
        min_size=1, max_size=30,
    )
)
def test_root_is_content_addressed(ops):
    """Property: the root depends only on final contents, not history."""
    final = {}
    trie_with_history = MerklePatriciaTrie()
    for k, v in ops:
        trie_with_history.put(k, v)
        final[k] = v
    fresh = MerklePatriciaTrie()
    for k, v in final.items():
        fresh.put(k, v)
    assert trie_with_history.root_hash == fresh.root_hash
