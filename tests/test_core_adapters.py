"""Integration tests for the uniform Ledger adapters and comparison."""

from dataclasses import replace

import pytest

from repro.blockchain.params import BITCOIN, ETHEREUM
from repro.core.adapters import BlockchainLedger, DagLedger
from repro.core.comparison import compare_ledgers
from repro.core.experiment import EXPERIMENTS
from repro.workloads.generators import PaymentWorkload

FAST_BITCOIN = replace(BITCOIN, target_block_interval_s=15.0, confirmation_depth=2)
FAST_ETHEREUM = replace(ETHEREUM, target_block_interval_s=5.0, confirmation_depth=2)


@pytest.fixture(scope="module")
def events():
    return PaymentWorkload(accounts=4, rate_tps=0.05, seed=2).generate(200.0)


class TestBlockchainLedgerAdapter:
    def test_utxo_mode_end_to_end(self, events):
        ledger = BlockchainLedger(params=FAST_BITCOIN, node_count=3, seed=1)
        ledger.setup(accounts=4, initial_balance=1_000_000)
        entries = ledger.run_workload(events, settle_s=120.0)
        assert entries
        stats = ledger.stats()
        assert stats.entries_confirmed == len(entries)
        assert stats.confirmation_latencies_s
        assert ledger.serialized_size() > 0

    def test_account_mode_end_to_end(self, events):
        ledger = BlockchainLedger(params=FAST_ETHEREUM, node_count=3, seed=1)
        ledger.setup(accounts=4, initial_balance=10**9)
        entries = ledger.run_workload(events, settle_s=60.0)
        stats = ledger.stats()
        assert stats.entries_confirmed == len(entries)

    def test_balances_reflect_workload(self, events):
        ledger = BlockchainLedger(params=FAST_BITCOIN, node_count=3, seed=1)
        ledger.setup(accounts=4, initial_balance=1_000_000)
        ledger.run_workload(events, settle_s=120.0)
        total = sum(ledger.balance(i) for i in range(4))
        fees_paid = len([e for e in events]) * ledger.fee
        assert total >= 4 * 1_000_000 - fees_paid - 1  # fees left the accounts

    def test_underfunded_submission_dropped(self):
        from repro.workloads.generators import PaymentEvent

        ledger = BlockchainLedger(params=FAST_BITCOIN, node_count=3, seed=1)
        ledger.setup(accounts=2, initial_balance=100)
        event = PaymentEvent(time_s=0.0, sender_index=0, recipient_index=1, amount=10**9)
        assert ledger.submit(event) is None


class TestDagLedgerAdapter:
    def test_end_to_end(self, events):
        ledger = DagLedger(node_count=4, representative_count=2, seed=1)
        ledger.setup(accounts=4, initial_balance=1_000_000)
        entries = ledger.run_workload(events, settle_s=30.0)
        stats = ledger.stats()
        assert stats.entries_confirmed == len(entries)
        assert stats.confirmation_latencies_s
        assert ledger.serialized_size() > 0

    def test_dag_confirms_much_faster_than_blockchain(self, events):
        """The Section IV punchline, measured end to end."""
        blockchain = BlockchainLedger(params=FAST_BITCOIN, node_count=3, seed=1)
        blockchain.setup(accounts=4, initial_balance=1_000_000)
        blockchain.run_workload(events, settle_s=120.0)
        dag = DagLedger(node_count=4, representative_count=2, seed=1)
        dag.setup(accounts=4, initial_balance=1_000_000)
        dag.run_workload(events, settle_s=30.0)
        bc_latency = sum(blockchain.stats().confirmation_latencies_s) / max(
            len(blockchain.stats().confirmation_latencies_s), 1
        )
        dag_latency = sum(dag.stats().confirmation_latencies_s) / max(
            len(dag.stats().confirmation_latencies_s), 1
        )
        assert dag_latency < bc_latency / 10


class TestCheckCapabilities:
    """The optional Ledger capabilities the fuzzer drives (repro.check)."""

    @pytest.fixture()
    def small_pair(self):
        blockchain = BlockchainLedger(params=FAST_BITCOIN, node_count=3, seed=1)
        blockchain.setup(accounts=3, initial_balance=1_000_000)
        dag = DagLedger(node_count=4, representative_count=2, seed=1)
        dag.setup(accounts=3, initial_balance=1_000_000)
        return blockchain, dag

    def test_deployment_view_exposes_machinery(self, small_pair):
        for ledger in small_pair:
            view = ledger.deployment()
            assert view is not None
            assert view.simulator is not None
            assert view.network is not None
            assert len(view.nodes) >= 3

    def test_healthy_audit_passes(self, small_pair):
        for ledger in small_pair:
            ledger.advance(30.0)
            report = ledger.audit()
            assert report is not None
            assert report.ok, report.render()

    def test_state_digest_deterministic_and_state_sensitive(self, small_pair):
        from repro.workloads.generators import PaymentEvent

        for ledger in small_pair:
            before = ledger.state_digest()
            assert before and before == ledger.state_digest()
            ledger.submit(PaymentEvent(
                time_s=0.0, sender_index=0, recipient_index=1, amount=100,
            ))
            ledger.advance(60.0)
            assert ledger.state_digest() != before

    def test_supply_corruption_surfaces_in_audit(self, small_pair):
        """Corrupting one replica's materialized state must trip the
        supply invariant on the next audit — the fuzzer's seeded-violation
        oracle."""
        for ledger in small_pair:
            assert ledger.inject_supply_corruption(777)
            report = ledger.audit()
            assert not report.ok
            assert any(v.invariant == "supply" for v in report.violations)
            assert "777" in report.render()

    def test_double_spend_never_survives_settlement(self, small_pair):
        from repro.workloads.generators import PaymentEvent

        for ledger in small_pair:
            ledger.advance(10.0)
            entries = ledger.submit_double_spend(PaymentEvent(
                time_s=0.0, sender_index=0, recipient_index=1, amount=333,
            ))
            assert len(entries) == 2
            ledger.advance(120.0)
            report = ledger.audit()
            assert report.ok, f"{ledger.paradigm}: {report.render()}"


class TestComparison:
    def test_report_renders_both_dimensions(self, events):
        report = compare_ledgers(
            BlockchainLedger(params=FAST_BITCOIN, node_count=3, seed=1),
            DagLedger(node_count=4, representative_count=2, seed=1),
            events,
            accounts=4,
            initial_balance=1_000_000,
            settle_s=90.0,
        )
        text = report.render()
        assert "bitcoin" in text and "nano" in text
        assert "entries confirmed" in text
        assert "block-lattice" in text
        assert report.blockchain.entries_confirmed > 0
        assert report.dag.entries_confirmed > 0


class TestExperimentRegistry:
    def test_all_benches_exist(self):
        """Code/docs cannot drift: every registered experiment has its
        bench file on disk."""
        import pathlib

        bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        for experiment in EXPERIMENTS.values():
            assert (bench_dir / experiment.bench).exists(), experiment.experiment_id

    def test_ids_cover_paper_sections(self):
        refs = " ".join(e.paper_ref for e in EXPERIMENTS.values())
        for section in ("II", "III", "IV", "V", "VI"):
            assert f"§{section}" in refs or f"Fig" in refs

    def test_fifteen_plus_experiments(self):
        assert len(EXPERIMENTS) >= 19
