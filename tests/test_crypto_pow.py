"""Tests for repro.crypto.pow (Section III-A1 / III-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.pow import (
    MAX_TARGET,
    check_antispam,
    check_pow,
    difficulty_to_target,
    expected_attempts,
    leading_zero_bits,
    pow_hash,
    solve_antispam,
    solve_pow,
    target_to_difficulty,
)


class TestTargetArithmetic:
    def test_difficulty_one_accepts_everything(self):
        assert difficulty_to_target(1) == MAX_TARGET

    def test_doubling_difficulty_halves_target(self):
        assert difficulty_to_target(2) == pytest.approx(MAX_TARGET / 2, rel=1e-9)

    def test_round_trip(self):
        target = difficulty_to_target(1000)
        assert target_to_difficulty(target) == pytest.approx(1000, rel=1e-3)

    def test_rejects_subunit_difficulty(self):
        with pytest.raises(ValueError):
            difficulty_to_target(0.5)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            target_to_difficulty(0)
        with pytest.raises(ValueError):
            target_to_difficulty(MAX_TARGET + 1)

    def test_leading_zero_bits(self):
        # difficulty 2^k requires ~k leading zero bits.
        assert leading_zero_bits(difficulty_to_target(1 << 12)) == 12
        assert leading_zero_bits(MAX_TARGET) == 0


class TestSolveAndCheck:
    def test_solution_verifies(self):
        target = difficulty_to_target(64)
        solution = solve_pow(b"header", target)
        assert solution is not None
        assert check_pow(b"header", solution.nonce, target)

    def test_solution_bound_to_payload(self):
        target = difficulty_to_target(64)
        solution = solve_pow(b"header", target)
        assert not check_pow(b"other-header", solution.nonce, target)

    def test_trivial_target_first_nonce(self):
        solution = solve_pow(b"x", MAX_TARGET)
        assert solution.nonce == 0 and solution.attempts == 1

    def test_max_attempts_exhaustion(self):
        # Astronomically hard target: bounded search must give up.
        assert solve_pow(b"x", 1, max_attempts=10) is None

    def test_attempts_scale_with_difficulty(self):
        # Statistical: mean attempts at difficulty d is ~d.
        difficulty = 128
        target = difficulty_to_target(difficulty)
        attempts = [
            solve_pow(bytes([i]), target).attempts for i in range(60)
        ]
        mean = sum(attempts) / len(attempts)
        assert difficulty / 3 < mean < difficulty * 3

    def test_pow_hash_nonce_sensitivity(self):
        assert pow_hash(b"p", 0) != pow_hash(b"p", 1)

    def test_expected_attempts(self):
        assert expected_attempts(4096) == 4096.0


class TestAntispam:
    def test_stamp_round_trip(self):
        work = solve_antispam(b"block-root", difficulty=32)
        assert check_antispam(b"block-root", work, difficulty=32)

    def test_stamp_not_transferable(self):
        work = solve_antispam(b"root-a", difficulty=32)
        # Overwhelmingly likely to fail for a different root.
        assert not check_antispam(b"root-b", work, difficulty=2**30)

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=32))
    def test_any_payload_solvable(self, payload):
        work = solve_antispam(payload, difficulty=16)
        assert check_antispam(payload, work, difficulty=16)
