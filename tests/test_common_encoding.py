"""Tests for repro.common.encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.common.encoding import (
    Decoder,
    Encoder,
    decode_uint,
    encode_bool,
    encode_bytes,
    encode_list,
    encode_str,
    encode_uint,
    encoded_size,
    split_pairs,
)


class TestUintEncoding:
    def test_round_trip(self):
        assert decode_uint(encode_uint(123456, 8)) == 123456

    def test_big_endian(self):
        assert encode_uint(1, 2) == b"\x00\x01"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_uint(-1)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            encode_uint(256, 1)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_round_trip_property(self, value):
        assert decode_uint(encode_uint(value, 8)) == value


class TestBytesEncoding:
    def test_round_trip(self):
        data = encode_bytes(b"hello")
        assert Decoder(data).read_bytes() == b"hello"

    def test_empty(self):
        assert Decoder(encode_bytes(b"")).read_bytes() == b""

    def test_length_prefix_is_four_bytes(self):
        assert len(encode_bytes(b"ab")) == 4 + 2

    @given(st.binary(max_size=200))
    def test_round_trip_property(self, payload):
        assert Decoder(encode_bytes(payload)).read_bytes() == payload


class TestListEncoding:
    def test_round_trip(self):
        items = [b"a", b"bb", b""]
        assert Decoder(encode_list(items)).read_list() == items

    def test_empty_list(self):
        assert Decoder(encode_list([])).read_list() == []

    @given(st.lists(st.binary(max_size=20), max_size=20))
    def test_round_trip_property(self, items):
        assert Decoder(encode_list(items)).read_list() == items


class TestDecoder:
    def test_sequential_reads(self):
        data = encode_uint(7, 8) + encode_bool(True) + encode_str("hi")
        d = Decoder(data)
        assert d.read_uint(8) == 7
        assert d.read_bool() is True
        assert d.read_str() == "hi"
        assert d.finished()

    def test_underrun_raises(self):
        with pytest.raises(ValueError):
            Decoder(b"\x00").read_uint(8)

    def test_remaining_tracks_position(self):
        d = Decoder(b"\x00" * 10)
        d.read_uint(4)
        assert d.remaining == 6


class TestHelpers:
    def test_encoded_size(self):
        assert encoded_size(b"ab", b"c") == 3

    def test_split_pairs(self):
        assert split_pairs([b"a", b"b", b"c", b"d"]) == [(b"a", b"b"), (b"c", b"d")]

    def test_split_pairs_odd_raises(self):
        with pytest.raises(ValueError):
            split_pairs([b"a"])

    def test_injectivity_of_framed_fields(self):
        # Length prefixes prevent boundary ambiguity: ("ab","c") != ("a","bc").
        assert encode_bytes(b"ab") + encode_bytes(b"c") != encode_bytes(
            b"a"
        ) + encode_bytes(b"bc")


class TestEncoder:
    """The bytearray builder must be byte-identical to the encode_* helpers
    — cached serializations were captured with the helpers before the
    builder existed, and ids must not shift."""

    def test_matches_helper_functions(self):
        built = (
            Encoder()
            .uint(7, 8)
            .bytes(b"payload")
            .str("hi")
            .bool(True)
            .list([b"a", b"bc"])
            .getvalue()
        )
        expected = (
            encode_uint(7, 8)
            + encode_bytes(b"payload")
            + encode_str("hi")
            + encode_bool(True)
            + encode_list([b"a", b"bc"])
        )
        assert built == expected

    def test_raw_appends_verbatim(self):
        assert Encoder().raw(b"\x00\xff").getvalue() == b"\x00\xff"

    def test_chaining_returns_self(self):
        enc = Encoder()
        assert enc.uint(1, 1) is enc
        assert enc.raw(b"") is enc

    def test_len_tracks_bytes(self):
        enc = Encoder().uint(1, 4).bytes(b"abc")
        assert len(enc) == 4 + 4 + 3

    def test_uint_rejects_negative(self):
        with pytest.raises(ValueError):
            Encoder().uint(-1, 8)

    def test_uint_rejects_overflow(self):
        with pytest.raises(ValueError):
            Encoder().uint(256, 1)

    def test_getvalue_is_immutable_bytes(self):
        enc = Encoder().uint(1, 1)
        snapshot = enc.getvalue()
        enc.uint(2, 1)
        assert snapshot == b"\x01"
        assert enc.getvalue() == b"\x01\x02"

    @given(st.lists(st.binary(max_size=40), max_size=8))
    def test_list_matches_encode_list(self, items):
        assert Encoder().list(items).getvalue() == encode_list(items)
