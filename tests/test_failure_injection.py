"""Failure injection: partitions, message loss, and offline actors.

These are the conditions under which the paper's consistency stories
actually bite: a partition is exactly the "two different histories
stored within the ledger" window of Section IV, and lossy links are the
"network conditions" bounding Section VI.
"""

from dataclasses import replace

import pytest

from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK, LinkParams
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.blockchain.transaction import build_transaction
from repro.dag.bootstrap import build_nano_testbed, fund_accounts

FAST_PARAMS = replace(BITCOIN, target_block_interval_s=10.0, confirmation_depth=3)


def build_pow_network(node_count=6, seed=0, link=FAST_LINK):
    keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(2)]
    genesis = build_genesis_with_allocations({k.address: 10**9 for k in keys})
    sim = Simulator(seed=seed)
    net = Network(sim)
    nodes = complete_topology(
        net, node_count, lambda nid: BlockchainNode(nid, FAST_PARAMS, genesis), link
    )
    for i, node in enumerate(nodes):
        node.start_pow_mining(
            1.0 / node_count, KeyPair.from_seed(bytes([80 + i]) * 32).address
        )
    return sim, net, list(nodes), keys


class TestBlockchainPartitions:
    def test_partition_creates_two_histories(self):
        """Section IV: during the partition each side builds its own
        chain — two conflicting histories exist simultaneously."""
        sim, net, nodes, keys = build_pow_network(seed=2)
        sim.run(until=100)
        net.partition([["n0", "n1", "n2"], ["n3", "n4", "n5"]])
        sim.run(until=400)
        left_head = nodes[0].chain.head.block_id
        right_head = nodes[3].chain.head.block_id
        assert left_head != right_head
        assert nodes[0].chain.height > 10
        assert nodes[3].chain.height > 10

    def test_heal_resolves_to_single_history(self):
        """After healing, the heavier branch wins everywhere and the
        loser is orphaned (the Fig. 4 resolution, at partition scale)."""
        sim, net, nodes, keys = build_pow_network(seed=2)
        sim.run(until=100)
        net.partition([["n0", "n1", "n2"], ["n3", "n4", "n5"]])
        sim.run(until=400)
        net.heal()
        # Reconnect protocol: each side announces its chain.
        nodes[0].announce_chain()
        nodes[3].announce_chain()
        sim.run(until=700)
        deep = [
            n.chain.block_at_height(min(m.chain.height for m in nodes) - 3).block_id
            for n in nodes
            for m in [n]
        ]
        assert len(set(deep)) == 1
        assert sum(n.stats.reorgs for n in nodes) > 0

    def test_double_spend_across_partition_resolves_once(self):
        """The same output spent differently on each side of a partition:
        after healing exactly one spend survives."""
        sim, net, nodes, keys = build_pow_network(seed=5)
        alice, bob = keys
        sim.run(until=50)
        net.partition([["n0", "n1", "n2"], ["n3", "n4", "n5"]])
        spendable = nodes[0].utxo.spendable(alice.address)
        left_tx = build_transaction(alice, spendable, bob.address, 100)
        right_tx = build_transaction(alice, spendable, bob.address, 200)
        assert left_tx.txid != right_tx.txid
        nodes[0].submit_transaction(left_tx)
        nodes[3].submit_transaction(right_tx)
        sim.run(until=300)
        net.heal()
        nodes[0].announce_chain()
        nodes[3].announce_chain()
        sim.run(until=900)
        # Consensus: every node sees exactly one of the two spends on its
        # main chain, and it is the same one everywhere.
        outcomes = set()
        for node in nodes:
            left_in = node.confirmations(left_tx.txid) > 0
            right_in = node.confirmations(right_tx.txid) > 0
            assert left_in != right_in  # exactly one
            outcomes.add("left" if left_in else "right")
        assert len(outcomes) == 1
        winner = 100 if outcomes.pop() == "left" else 200
        assert all(n.balance(bob.address) == 10**9 + winner for n in nodes)


class TestLossyLinks:
    def test_consensus_survives_heavy_message_loss(self):
        """30% per-hop loss: gossip redundancy still converges the chain."""
        lossy = LinkParams(
            latency_s=0.05, jitter_s=0.02, bandwidth_bps=1e9, loss_probability=0.3
        )
        sim, net, nodes, keys = build_pow_network(seed=7, link=lossy)
        sim.run(until=800)
        assert net.messages_lost > 0
        heights = [n.chain.height for n in nodes]
        # Everyone made progress; deep prefixes agree.
        assert min(heights) > 20
        check = min(heights) - 5
        assert len({n.chain.block_at_height(check).block_id for n in nodes}) == 1


class TestDagFailures:
    def test_offline_majority_rep_stalls_then_recovers(self):
        """Confirmation needs quorum: with the heavyweight representative
        offline nothing confirms; when it returns, votes resume."""
        tb = build_nano_testbed(
            node_count=5, representative_count=2, seed=9,
            link_params=LinkParams(latency_s=0.05, jitter_s=0.01),
        )
        # Four users, round-robin wallets n0..n3; the transfer below runs
        # between wallets n2/n3 so the offline rep node is not involved.
        users = fund_accounts(tb, 4, 10**6, settle_time=1.5)
        heavy_rep = tb.representative_nodes()[0]  # holds genesis weight
        heavy_rep.set_online(False)
        block = tb.node_for(users[2].address).send_payment(
            users[2].address, users[3].address, 9
        )
        tb.simulator.run(until=tb.simulator.now + 10)
        observer = tb.nodes[-1]
        assert not observer.is_confirmed(block.block_hash)
        # The transfer still *settled* (balances moved) — Section IV-B
        # distinguishes settled from confirmed.
        assert observer.balance(users[3].address) == 10**6 + 9

        heavy_rep.set_online(True)
        heavy_rep.bootstrap_from(observer)
        tb.simulator.run(until=tb.simulator.now + 10)
        assert observer.is_confirmed(block.block_hash)

    def test_lattice_converges_under_loss(self):
        lossy = LinkParams(
            latency_s=0.05, jitter_s=0.02, bandwidth_bps=1e9, loss_probability=0.2
        )
        tb = build_nano_testbed(
            node_count=6, representative_count=3, seed=11, link_params=lossy,
        )
        users = fund_accounts(tb, 3, 10**6, settle_time=4.0)
        for i in range(6):
            sender = users[i % 3]
            recipient = users[(i + 1) % 3]
            tb.node_for(sender.address).send_payment(
                sender.address, recipient.address, 50
            )
            tb.simulator.run(until=tb.simulator.now + 4)
        tb.simulator.run(until=tb.simulator.now + 20)
        # Gossip is redundant across the clique: all replicas converge.
        counts = {n.lattice.block_count() for n in tb.nodes}
        assert len(counts) == 1
        for user in users:
            assert len({n.balance(user.address) for n in tb.nodes}) == 1
