"""The uniform deployment factory (ISSUE 7's API redesign).

``build_deployment`` is the single constructor every bench, test and
CLI command goes through; these tests pin its contract: paradigm/engine
validation, honest rejection of inapplicable knobs, Byzantine-spec
wiring, the uniform ``Deployment`` accessors, and the deprecated
``build_ledger`` shim staying alive for released callers.
"""

import pytest

from repro.check.generator import profile_named
from repro.check.runner import ALL_PARADIGMS, PARADIGMS, build_ledger
from repro.core.deploy import (
    PARADIGM_ENGINES,
    WorkloadSpec,
    build_deployment,
)
from repro.faults import ByzantineSpec
from repro.workloads.generators import PaymentEvent


def test_unknown_paradigm_and_engine_raise():
    with pytest.raises(ValueError, match="unknown paradigm"):
        build_deployment("tangle3000")
    with pytest.raises(ValueError, match="no engine"):
        build_deployment("blockchain", engine="hotstuff")
    with pytest.raises(ValueError, match="no engine"):
        build_deployment("bft", engine="pow")


def test_engine_defaults_to_paradigm_native():
    for paradigm, engines in PARADIGM_ENGINES.items():
        deployment = build_deployment(paradigm)
        assert deployment.paradigm == paradigm
        assert deployment.engine == engines[0]


def test_inapplicable_knobs_are_rejected():
    with pytest.raises(ValueError, match="do not apply"):
        build_deployment("blockchain", view_timeout_s=2.0)
    with pytest.raises(ValueError, match="do not apply"):
        build_deployment("dag", fee=3)
    with pytest.raises(ValueError, match="do not apply"):
        build_deployment("bft", confirmation_depth=2)
    # f_override is a quorum knob: BFT only.
    with pytest.raises(ValueError, match="do not apply"):
        build_deployment(
            "blockchain",
            faults=ByzantineSpec(count=1, behavior="selfish", f_override=1),
        )


def test_byzantine_behavior_must_match_paradigm():
    with pytest.raises(ValueError, match="not wired"):
        build_deployment("blockchain",
                         faults=ByzantineSpec(count=1, behavior="equivocate"))
    with pytest.raises(ValueError, match="not wired"):
        build_deployment("bft",
                         faults=ByzantineSpec(count=1, behavior="selfish"))


def test_byzantine_spec_validates():
    with pytest.raises(ValueError, match="count"):
        ByzantineSpec(count=-1)
    with pytest.raises(ValueError, match="unknown Byzantine behavior"):
        ByzantineSpec(behavior="eclipse")


def test_fault_injector_requires_setup():
    deployment = build_deployment("bft")
    with pytest.raises(RuntimeError, match="setup"):
        deployment.fault_injector()


def test_bft_deployment_exposes_consensus_counters():
    deployment = build_deployment("bft", seed=1).setup(4, 1_000_000)
    ledger = deployment.ledger
    for i in range(4):
        ledger.submit(PaymentEvent(time_s=ledger.now(), sender_index=i % 4,
                                   recipient_index=(i + 1) % 4, amount=9))
        ledger.advance(2.0)
    ledger.advance(20.0)

    counters = deployment.layer_counters()
    assert counters["consensus.commits"] > 0
    assert counters["consensus.qcs_formed"] > 0
    assert counters["consensus.votes_sent"] > 0
    # ...and the same numbers surface through the Ledger stats contract.
    extra = ledger.stats().extra
    assert extra["consensus.commits"] == counters["consensus.commits"]


def test_byzantine_spec_marks_nodes():
    deployment = build_deployment(
        "bft", faults=ByzantineSpec(count=1, behavior="equivocate"),
    ).setup(4, 1_000_000)
    marked = [n for n in deployment.nodes if n.is_byzantine]
    assert len(marked) == 1
    assert marked[0].byzantine_behavior == "equivocate"


def test_workload_spec_round_trip():
    deployment = build_deployment(
        "dag", workload=WorkloadSpec(rate_tps=2.0, duration_s=5.0),
    ).setup(4, 1_000_000)
    injector = deployment.start_workload(accounts=4)
    deployment.ledger.advance(10.0)
    assert injector.report.offered > 0

    bare = build_deployment("dag").setup(4, 1_000_000)
    with pytest.raises(ValueError, match="WorkloadSpec"):
        bare.start_workload(accounts=4)


def test_build_ledger_shim_still_works():
    profile = profile_named("baseline")
    for paradigm in ALL_PARADIGMS:
        ledger = build_ledger(paradigm, seed=0, profile=profile)
        assert ledger.paradigm == paradigm
    with pytest.raises(ValueError, match="unknown paradigm"):
        build_ledger("nope", seed=0, profile=profile)


def test_default_fuzz_pair_excludes_bft():
    # The differential default stays the paper's two-paradigm pair; the
    # BFT engine joins only by explicit selection.
    assert set(PARADIGMS) == {"blockchain", "dag"}
    assert set(ALL_PARADIGMS) == {"blockchain", "dag", "bft"}


def test_topology_scale_attaches_clusters_at_setup():
    from repro.net.aggregate import TopologyScale

    deployment = build_deployment("dag", node_count=4,
                                  representative_count=2,
                                  topology_scale=104, seed=1)
    assert deployment.topology_scale == TopologyScale(total_nodes=104)
    assert deployment.clusters == []  # nothing before setup
    deployment.setup(4, 1_000_000)
    assert len(deployment.clusters) == 4
    stats = deployment.scale_stats()
    assert stats["boundary_nodes"] == 4.0
    assert stats["modeled_nodes"] == 100.0
    # A TopologyScale instance passes through unchanged.
    scale = TopologyScale(total_nodes=50, cluster_degree=4)
    assert build_deployment("blockchain", node_count=3,
                            topology_scale=scale).topology_scale is scale


def test_topology_scale_below_boundary_is_rejected():
    with pytest.raises(ValueError, match="below the fully-simulated"):
        build_deployment("blockchain", node_count=5, topology_scale=3)


def test_zero_surplus_scale_attaches_nothing_and_reports_explicitly():
    """total_nodes == boundary count: a legal no-op scale.  No clusters
    attach, and scale_stats() still returns the full key set with an
    explicit scaled=0.0 instead of a partial report."""
    deployment = build_deployment("blockchain", node_count=3,
                                  topology_scale=3, seed=0)
    deployment.setup(4, 1_000_000)
    assert deployment.clusters == []
    stats = deployment.scale_stats()
    assert stats == {
        "scaled": 0.0,
        "boundary_nodes": 3.0,
        "modeled_nodes": 0.0,
        "modeled_deliveries": 0.0,
        "messages_modeled": 0.0,
        "propagation_max_s": 0.0,
    }


def test_unscaled_deployment_reports_the_same_empty_shape():
    deployment = build_deployment("blockchain", node_count=3, seed=0)
    deployment.setup(4, 1_000_000)
    stats = deployment.scale_stats()
    assert stats["scaled"] == 0.0
    assert set(stats) == {"scaled", "boundary_nodes", "modeled_nodes",
                          "modeled_deliveries", "messages_modeled",
                          "propagation_max_s"}
