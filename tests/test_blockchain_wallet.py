"""Tests for repro.blockchain.wallet."""

import pytest

from repro.common.errors import ValidationError
from repro.crypto.keys import KeyPair
from repro.blockchain.transaction import make_coinbase
from repro.blockchain.utxo import UTXOSet
from repro.blockchain.wallet import AccountWallet, UtxoWallet


@pytest.fixture
def funded_wallet(rng):
    kp = KeyPair.generate(rng)
    wallet = UtxoWallet(kp)
    funding = make_coinbase(kp.address, 1_000)
    wallet.track_funding(funding)
    return wallet, funding


class TestUtxoWallet:
    def test_tracks_funding_outputs(self, funded_wallet):
        wallet, _ = funded_wallet
        assert wallet.balance == 1_000
        assert len(wallet.spendable()) == 1

    def test_pay_updates_optimistic_view(self, funded_wallet, rng):
        wallet, _ = funded_wallet
        bob = KeyPair.generate(rng)
        tx = wallet.pay(bob.address, 300, fee=10)
        assert wallet.balance == 690  # change tracked immediately

    def test_chained_unconfirmed_payments(self, funded_wallet, rng):
        """The reason wallets exist: spending twice before anything is
        mined must not reuse the first payment's inputs."""
        wallet, _ = funded_wallet
        bob = KeyPair.generate(rng)
        tx1 = wallet.pay(bob.address, 300)
        tx2 = wallet.pay(bob.address, 200)
        in1 = {i.outpoint for i in tx1.inputs}
        in2 = {i.outpoint for i in tx2.inputs}
        assert in1.isdisjoint(in2)
        # Both apply cleanly to a fresh UTXO set in order.
        utxo = UTXOSet()
        utxo.apply_transaction(make_coinbase(wallet.address, 1_000))
        utxo.apply_transaction(tx1)
        utxo.apply_transaction(tx2)
        assert utxo.balance(bob.address) == 500

    def test_overspend_rejected(self, funded_wallet, rng):
        wallet, _ = funded_wallet
        bob = KeyPair.generate(rng)
        with pytest.raises(ValidationError):
            wallet.pay(bob.address, 2_000)

    def test_receive_from_counterparty(self, funded_wallet, rng):
        wallet, _ = funded_wallet
        other = UtxoWallet(KeyPair.generate(rng))
        other.track_funding(make_coinbase(other.address, 500, nonce=2))
        payment = other.pay(wallet.address, 120)
        credited = wallet.receive_from(payment)
        assert credited == 1
        assert wallet.balance == 1_120

    def test_track_validates_amount(self, funded_wallet):
        wallet, funding = funded_wallet
        with pytest.raises(ValidationError):
            wallet.track(funding.txid, 5, -1)

    def test_funding_for_stranger_ignored(self, rng):
        wallet = UtxoWallet(KeyPair.generate(rng))
        stranger_cb = make_coinbase(KeyPair.generate(rng).address, 100)
        assert wallet.track_funding(stranger_cb) == 0
        assert wallet.balance == 0


class TestAccountWallet:
    def test_nonces_increment(self, rng):
        wallet = AccountWallet(KeyPair.generate(rng))
        bob = KeyPair.generate(rng)
        tx0 = wallet.pay(bob.address, 10)
        tx1 = wallet.pay(bob.address, 10)
        assert (tx0.nonce, tx1.nonce) == (0, 1)
        assert wallet.next_nonce == 2

    def test_transactions_signed(self, rng):
        wallet = AccountWallet(KeyPair.generate(rng))
        tx = wallet.pay(KeyPair.generate(rng).address, 5)
        assert tx.verify_signature()

    def test_resync(self, rng):
        wallet = AccountWallet(KeyPair.generate(rng), next_nonce=7)
        wallet.resync(3)
        assert wallet.next_nonce == 3
        with pytest.raises(ValidationError):
            wallet.resync(-1)
