"""Tests for the abstract Ledger helpers (repro.core.ledger)."""

from typing import List, Optional

from repro.common.types import Hash
from repro.crypto.hashing import sha256
from repro.core.ledger import Ledger, LedgerStats
from repro.workloads.generators import PaymentEvent


class FakeLedger(Ledger):
    """Minimal in-memory ledger recording the driver's behaviour."""

    name = "fake"
    paradigm = "test"

    def __init__(self, reject_amounts_over: Optional[int] = None):
        self._now = 0.0
        self.submissions: List[tuple] = []
        self.reject_over = reject_amounts_over

    def setup(self, accounts, initial_balance):
        self.accounts = accounts

    def submit(self, event: PaymentEvent):
        if self.reject_over is not None and event.amount > self.reject_over:
            return None
        self.submissions.append((self._now, event))
        return sha256(repr(event).encode())

    def advance(self, duration_s):
        self._now += duration_s

    def now(self):
        return self._now

    def is_confirmed(self, entry):
        return True

    def balance(self, account_index):
        return 0

    def serialized_size(self):
        return 0

    def stats(self):
        return LedgerStats(entries_created=len(self.submissions))


def ev(t, amount=10):
    return PaymentEvent(time_s=t, sender_index=0, recipient_index=1, amount=amount)


class TestRunWorkload:
    def test_events_delivered_at_their_timestamps(self):
        ledger = FakeLedger()
        ledger.run_workload([ev(5.0), ev(1.0), ev(3.0)], settle_s=0.0)
        times = [t for t, _ in ledger.submissions]
        assert times == [1.0, 3.0, 5.0]  # sorted and clock-aligned

    def test_settle_time_appended(self):
        ledger = FakeLedger()
        ledger.run_workload([ev(2.0)], settle_s=30.0)
        assert ledger.now() == 32.0

    def test_rejected_events_not_counted(self):
        ledger = FakeLedger(reject_amounts_over=50)
        entries = ledger.run_workload([ev(1.0, amount=10), ev(2.0, amount=100)])
        assert len(entries) == 1
        assert len(ledger.submissions) == 1

    def test_empty_workload(self):
        ledger = FakeLedger()
        assert ledger.run_workload([], settle_s=5.0) == []
        assert ledger.now() == 5.0

    def test_simultaneous_events_keep_order(self):
        ledger = FakeLedger()
        entries = ledger.run_workload([ev(1.0, 1), ev(1.0, 2)], settle_s=0.0)
        assert len(entries) == 2
