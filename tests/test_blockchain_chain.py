"""Tests for repro.blockchain.chain (fork choice & reorgs, Section IV-A)."""

import pytest

from repro.common.errors import CementedBlockError, ValidationError
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import assemble_block, build_genesis_block
from repro.blockchain.chain import ChainStore
from repro.blockchain.transaction import make_coinbase


def extend(chain_store, parent_block, keypair, nonce, target=MAX_TARGET, timestamp=None):
    """Mine a trivial child of ``parent_block`` and add it."""
    block = assemble_block(
        parent=parent_block.header,
        transactions=[make_coinbase(keypair.address, 50, nonce=nonce)],
        timestamp=timestamp if timestamp is not None else parent_block.header.timestamp + 1,
        target=target,
    )
    result = chain_store.add_block(block)
    return block, result


@pytest.fixture
def chain(keypair):
    genesis = build_genesis_block(keypair.address, 1000)
    return ChainStore(genesis), genesis


class TestBasics:
    def test_requires_genesis(self, keypair):
        genesis = build_genesis_block(keypair.address, 1000)
        child = assemble_block(
            genesis.header, [make_coinbase(keypair.address, 1, nonce=1)], 1.0, MAX_TARGET
        )
        with pytest.raises(ValidationError):
            ChainStore(child)

    def test_linear_extension(self, chain, keypair):
        store, genesis = chain
        block, result = extend(store, genesis, keypair, nonce=1)
        assert result.extended_main and not result.is_reorg
        assert store.head == block
        assert store.height == 1

    def test_duplicate_ignored(self, chain, keypair):
        store, genesis = chain
        block, _ = extend(store, genesis, keypair, nonce=1)
        again = store.add_block(block)
        assert not again.block_accepted

    def test_height_mismatch_rejected(self, chain, keypair):
        store, genesis = chain
        bad = assemble_block(
            genesis.header, [make_coinbase(keypair.address, 1, nonce=1)], 1.0, MAX_TARGET
        )
        bad = type(bad)(
            header=type(bad.header)(
                parent_id=bad.header.parent_id,
                merkle_root=bad.header.merkle_root,
                timestamp=bad.header.timestamp,
                height=5,  # wrong
                target=bad.header.target,
            ),
            transactions=bad.transactions,
        )
        with pytest.raises(ValidationError):
            store.add_block(bad)

    def test_confirmations_count_from_tip(self, chain, keypair):
        store, genesis = chain
        first, _ = extend(store, genesis, keypair, nonce=1)
        prev = first
        for n in range(2, 7):
            prev, _ = extend(store, prev, keypair, nonce=n)
        assert store.confirmations(first.block_id) == 6
        assert store.confirmations(store.head.block_id) == 1
        assert store.confirmations(genesis.block_id) == 7


class TestForksAndReorgs:
    def test_side_branch_does_not_move_head(self, chain, keypair):
        store, genesis = chain
        main, _ = extend(store, genesis, keypair, nonce=1)
        side, result = extend(store, genesis, keypair, nonce=2)
        assert not result.extended_main
        assert store.head == main
        assert len(store.tips()) == 2  # the live soft fork of Fig. 4

    def test_longer_branch_wins(self, chain, keypair):
        store, genesis = chain
        main, _ = extend(store, genesis, keypair, nonce=1)
        side1, _ = extend(store, genesis, keypair, nonce=2)
        side2, result = extend(store, side1, keypair, nonce=3)
        assert result.is_reorg
        assert [b.block_id for b in result.rolled_back] == [main.block_id]
        assert [b.block_id for b in result.applied] == [side1.block_id, side2.block_id]
        assert store.head == side2
        assert store.reorg_count == 1
        assert store.deepest_reorg == 1

    def test_orphaned_block_off_main_chain(self, chain, keypair):
        store, genesis = chain
        main, _ = extend(store, genesis, keypair, nonce=1)
        side1, _ = extend(store, genesis, keypair, nonce=2)
        extend(store, side1, keypair, nonce=3)
        assert not store.is_on_main_chain(main.block_id)
        assert store.confirmations(main.block_id) == 0

    def test_first_seen_wins_ties(self, chain, keypair):
        store, genesis = chain
        first, _ = extend(store, genesis, keypair, nonce=1)
        extend(store, genesis, keypair, nonce=2)  # equal work, later arrival
        assert store.head == first

    def test_orphan_pool_connects_out_of_order(self, chain, keypair):
        store, genesis = chain
        a = assemble_block(
            genesis.header, [make_coinbase(keypair.address, 1, nonce=1)], 1.0, MAX_TARGET
        )
        b = assemble_block(
            a.header, [make_coinbase(keypair.address, 1, nonce=2)], 2.0, MAX_TARGET
        )
        result_b = store.add_block(b)  # parent unknown: parked
        assert not result_b.block_accepted
        assert store.orphan_pool_size() == 1
        result_a = store.add_block(a)  # unlocks b
        assert result_a.extended_main
        assert store.head.block_id == b.block_id
        assert store.orphan_pool_size() == 0

    def test_deep_reorg(self, chain, keypair):
        store, genesis = chain
        prev = genesis
        main_blocks = []
        for n in range(1, 4):
            prev, _ = extend(store, prev, keypair, nonce=n)
            main_blocks.append(prev)
        side = genesis
        for n in range(10, 14):
            side, result = extend(store, side, keypair, nonce=n)
        assert store.head == side
        assert store.deepest_reorg == 3
        assert all(not store.is_on_main_chain(b.block_id) for b in main_blocks)


class TestCementing:
    def test_cemented_reorg_rejected(self, chain, keypair):
        store, genesis = chain
        prev = genesis
        for n in range(1, 4):
            prev, _ = extend(store, prev, keypair, nonce=n)
        store.cement(2)
        side = genesis
        side, _ = extend(store, side, keypair, nonce=20)
        side, _ = extend(store, side, keypair, nonce=21)
        side, _ = extend(store, side, keypair, nonce=22)
        with pytest.raises(CementedBlockError):
            extend(store, side, keypair, nonce=23)  # would out-weigh main

    def test_cement_unmined_height_rejected(self, chain, keypair):
        store, _ = chain
        with pytest.raises(ValueError):
            store.cement(10)


class TestSizeAccounting:
    def test_total_includes_side_branches(self, chain, keypair):
        store, genesis = chain
        extend(store, genesis, keypair, nonce=1)
        extend(store, genesis, keypair, nonce=2)
        assert store.total_size_bytes() > store.main_chain_size_bytes()

    def test_drop_body_frees_body_bytes(self, chain, keypair):
        store, genesis = chain
        block, _ = extend(store, genesis, keypair, nonce=1)
        freed = store.drop_body(block.block_id)
        assert freed == block.body_size_bytes
        assert store.block(block.block_id).transactions == ()
