"""Tests for repro.trace (ring-buffered structured tracing)."""

import io
import json

import pytest

from repro.trace import (
    DELIVER,
    DROP,
    REASON_LOSS,
    REASON_PARTITION,
    SCHEDULE,
    TraceEvent,
    Tracer,
)


class TestTraceEvent:
    def test_to_dict_omits_missing_fields(self):
        event = TraceEvent(time=1.5, kind=SCHEDULE, src="a", dst="b")
        record = event.to_dict()
        assert record == {"t": 1.5, "kind": SCHEDULE, "src": "a", "dst": "b"}

    def test_detail_is_flattened(self):
        event = TraceEvent(time=0.0, kind=DROP, reason=REASON_LOSS,
                           detail={"attempt": 3})
        assert event.to_dict()["attempt"] == 3

    def test_json_roundtrip(self):
        event = TraceEvent(time=2.0, kind=DELIVER, src="a", dst="b",
                           msg_kind="block")
        assert json.loads(event.to_json())["msg_kind"] == "block"


class TestTracerCounters:
    def test_schedule_resolves_as_deliver_or_drop(self):
        tracer = Tracer()
        tracer.record_schedule(0.0, "a", "b", "tx")
        tracer.record_schedule(0.0, "a", "c", "tx")
        assert tracer.in_flight == 2
        tracer.record_deliver(0.1, "a", "b", "tx")
        tracer.record_drop(0.1, "a", "c", "tx", REASON_PARTITION)
        assert tracer.in_flight == 0
        assert tracer.scheduled == tracer.delivered + tracer.dropped

    def test_per_node_and_per_link_counters(self):
        tracer = Tracer()
        tracer.record_schedule(0.0, "a", "b", "tx")
        tracer.record_deliver(0.1, "a", "b", "tx")
        tracer.record_schedule(0.2, "a", "b", "tx")
        tracer.record_drop(0.3, "a", "b", "tx", REASON_LOSS)
        assert tracer.node_counters("a")["scheduled"] == 2
        assert tracer.node_counters("b") == {
            "scheduled": 0, "delivered": 1, "dropped": 1,
        }
        assert tracer.link_counters("a", "b") == {
            "scheduled": 2, "delivered": 1, "dropped": 1,
        }
        assert tracer.link_counters("b", "a")["scheduled"] == 0

    def test_drop_reasons_tallied(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.record_schedule(0.0, "a", "b", "tx")
            tracer.record_drop(0.0, "a", "b", "tx", REASON_LOSS)
        tracer.record_schedule(0.0, "a", "b", "tx")
        tracer.record_drop(0.0, "a", "b", "tx", REASON_PARTITION)
        assert tracer.drop_reasons == {REASON_LOSS: 3, REASON_PARTITION: 1}

    def test_counters_flat_dict(self):
        tracer = Tracer()
        tracer.record_schedule(0.0, "a", "b", "tx")
        tracer.record_drop(0.0, "a", "b", "tx", REASON_LOSS)
        tracer.record_fork(1.0, "a", height=7)
        flat = tracer.counters()
        assert flat["trace.scheduled"] == 1.0
        assert flat["trace.dropped.loss"] == 1.0
        assert flat["trace.forks"] == 1.0
        assert flat["trace.in_flight"] == 0.0

    def test_summary_renders(self):
        tracer = Tracer()
        tracer.record_schedule(0.0, "a", "b", "tx")
        tracer.record_deliver(0.1, "a", "b", "tx")
        text = tracer.summary()
        assert "scheduled=1" in text and "delivered=1" in text


class TestRingBuffer:
    def test_ring_evicts_but_counters_survive(self):
        tracer = Tracer(capacity=10)
        for i in range(50):
            tracer.record_schedule(float(i), "a", "b", "tx")
            tracer.record_deliver(float(i), "a", "b", "tx")
        assert len(tracer.events()) == 10
        assert tracer.scheduled == 50 and tracer.delivered == 50
        assert tracer.emitted == 100
        # Oldest surviving record is recent, not t=0.
        assert tracer.events()[0].time >= 45.0

    def test_kind_filter(self):
        tracer = Tracer()
        tracer.record_schedule(0.0, "a", "b", "tx")
        tracer.record_deliver(0.1, "a", "b", "tx")
        assert [e.kind for e in tracer.events(DELIVER)] == [DELIVER]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestDumpJsonl:
    def test_dump_to_file_object(self):
        tracer = Tracer()
        tracer.record_schedule(0.0, "a", "b", "tx")
        tracer.record_deliver(0.5, "a", "b", "tx")
        buffer = io.StringIO()
        written = tracer.dump_jsonl(buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert written == 2 and len(lines) == 2
        assert json.loads(lines[1])["kind"] == DELIVER

    def test_dump_to_path_with_filter(self, tmp_path):
        tracer = Tracer()
        tracer.record_schedule(0.0, "a", "b", "tx")
        tracer.record_drop(0.5, "a", "b", "tx", REASON_LOSS)
        out = tmp_path / "trace.jsonl"
        written = tracer.dump_jsonl(str(out), kinds=[DROP])
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert written == 1
        assert records == [{"t": 0.5, "kind": DROP, "src": "a", "dst": "b",
                            "msg_kind": "tx", "reason": REASON_LOSS}]


class TestNullTracer:
    """The no-op tracer is the pay-for-use fast path: call sites gate on
    ``tracer.enabled`` and untraced sweeps must record nothing."""

    def test_disabled_flag(self):
        from repro.trace import NullTracer

        assert Tracer.enabled is True
        assert NullTracer.enabled is False
        assert NullTracer().enabled is False

    def test_records_nothing(self):
        from repro.trace import NullTracer

        tracer = NullTracer()
        tracer.record_schedule(1.0, "a", "b", "tx")
        tracer.record_deliver(2.0, "a", "b", "tx")
        tracer.record_drop(3.0, "a", "b", "tx", REASON_LOSS)
        tracer.record_retransmit(4.0, "a", "b", "tx", attempt=2, delay=0.1)
        tracer.record_give_up(5.0, "a", "b", "tx", attempts=3)
        tracer.record_fork(6.0, "n1")
        tracer.emit(7.0, SCHEDULE, src="a", dst="b")
        assert list(tracer.events()) == []
        assert tracer.counters()["trace.scheduled"] == 0.0
        assert tracer.counters()["trace.delivered"] == 0.0

    def test_network_accepts_null_tracer(self):
        from repro.net.message import Message
        from repro.net.network import Network
        from repro.net.node import NetworkNode
        from repro.sim.simulator import Simulator
        from repro.trace import NullTracer

        class Sink(NetworkNode):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.received = []

            def handle_message(self, sender_id, message):
                self.received.append(message.payload)

        sim = Simulator(seed=5)
        net = Network(sim, tracer=NullTracer())
        a, b = Sink("a"), Sink("b")
        net.add_node(a)
        net.add_node(b)
        net.connect("a", "b")
        net.transmit("a", "b", Message(kind="ping", payload="x", size_bytes=10))
        sim.run()
        assert b.received == ["x"]
        assert list(net.tracer.events()) == []
        assert net.tracer.counters()["trace.delivered"] == 0.0
