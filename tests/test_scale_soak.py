"""Moderate-scale soak tests: bigger networks, longer runs.

These exist to catch emergent problems the small fixtures can't (gossip
storms, queue growth, drift between replicas over many blocks).
"""

from dataclasses import replace

from repro.crypto.keys import KeyPair
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.topology import random_regular_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.core.invariants import audit_blockchain, audit_lattice
from repro.dag.bootstrap import build_nano_testbed, fund_accounts

LINK = LinkParams(latency_s=0.1, jitter_s=0.05)


def test_thirty_node_pow_network_soak():
    """30 miners on a random 6-regular overlay for ~2.5 simulated hours:
    chains converge, invariants hold, the orphan rate stays sane."""
    params = replace(BITCOIN, target_block_interval_s=30.0)
    key = KeyPair.from_seed(b"\x42" * 32)
    genesis = build_genesis_with_allocations({key.address: 10**9})
    sim = Simulator(seed=23)
    net = Network(sim)
    nodes = [
        n for n in random_regular_topology(
            net, 30, 6,
            lambda nid: BlockchainNode(nid, params, genesis),
            LINK, seed=23,
        )
        if isinstance(n, BlockchainNode)
    ]
    for i, node in enumerate(nodes):
        node.start_pow_mining(
            1 / 30, KeyPair.from_seed(bytes([i + 1, 7] + [0] * 30)).address
        )
    sim.run(until=9_000)

    report = audit_blockchain(nodes, expected_supply_base=10**9)
    assert report.ok, report.render()
    heights = [n.chain.height for n in nodes]
    assert min(heights) > 200
    orphaned = sum(n.stats.orphaned_blocks for n in nodes) / len(nodes)
    assert orphaned / max(heights) < 0.2


def test_sixteen_node_nano_soak():
    """16-node lattice, 8 reps, 200 payments: full convergence + audit."""
    import random

    tb = build_nano_testbed(
        node_count=16, representative_count=8, seed=31, link_params=LINK,
    )
    users = fund_accounts(tb, 8, 10**9, settle_time=1.5)
    rng = random.Random(5)
    for i in range(200):
        sender = rng.choice(users)
        recipient = rng.choice([u for u in users if u is not sender])
        wallet = tb.node_for(sender.address)
        if wallet.balance(sender.address) > 1_000:
            wallet.send_payment(sender.address, recipient.address,
                                rng.randint(1, 1_000))
        tb.simulator.run(until=tb.simulator.now + 0.5)
    tb.simulator.run(until=tb.simulator.now + 30)

    report = audit_lattice(tb.nodes, expected_supply=10**15)
    assert report.ok, report.render()
    assert len({n.lattice.block_count() for n in tb.nodes}) == 1
    # Votes confirmed essentially everything that settled.
    observer = tb.nodes[0]
    assert observer.elections.confirmed_count() > 150
