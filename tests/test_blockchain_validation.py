"""Tests for repro.blockchain.validation."""

import pytest

from repro.common.errors import (
    DoubleSpendError,
    InvalidProofOfWorkError,
    ValidationError,
)
from repro.crypto.keys import KeyPair
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import Block, assemble_block, build_genesis_block
from repro.blockchain.params import BITCOIN
from repro.blockchain.transaction import build_transaction, make_coinbase
from repro.blockchain.utxo import UTXOSet
from repro.blockchain.validation import (
    apply_block,
    revert_block,
    validate_block_structure,
    validate_block_transactions,
    validate_transaction,
)


@pytest.fixture
def world(rng):
    """Genesis-funded UTXO world: (utxo, genesis, alice, bob)."""
    alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
    genesis = build_genesis_block(alice.address, 10_000)
    utxo = UTXOSet()
    utxo.apply_transaction(genesis.transactions[0])
    return utxo, genesis, alice, bob


def make_block(parent, txs, miner, reward, nonce=1):
    coinbase = make_coinbase(miner.address, reward, nonce=nonce)
    return assemble_block(
        parent=parent.header,
        transactions=[coinbase] + txs,
        timestamp=parent.header.timestamp + 1,
        target=MAX_TARGET,
    )


class TestStructure:
    def test_valid_block_passes(self, world):
        utxo, genesis, alice, _ = world
        block = make_block(genesis, [], alice, BITCOIN.block_reward)
        validate_block_structure(block, BITCOIN)

    def test_merkle_mismatch_rejected(self, world):
        utxo, genesis, alice, bob = world
        block = make_block(genesis, [], alice, BITCOIN.block_reward)
        forged = Block(
            header=block.header,
            transactions=(make_coinbase(bob.address, 1, nonce=7),),
        )
        with pytest.raises(ValidationError):
            validate_block_structure(forged, BITCOIN)

    def test_pow_checked_for_hard_target(self, world):
        _, genesis, alice, _ = world
        block = assemble_block(
            genesis.header,
            [make_coinbase(alice.address, 1, nonce=1)],
            1.0,
            target=1,  # impossible without grinding
        )
        with pytest.raises(InvalidProofOfWorkError):
            validate_block_structure(block, BITCOIN)

    def test_oversize_block_rejected(self, world, rng):
        _, genesis, alice, _ = world
        # Even a lone coinbase exceeds a sub-coinbase-sized cap.
        from dataclasses import replace

        tiny = replace(BITCOIN, max_block_size_bytes=10)
        block = make_block(genesis, [], alice, BITCOIN.block_reward)
        with pytest.raises(ValidationError):
            validate_block_structure(block, tiny)


class TestTransactionValidation:
    def test_valid_spend(self, world):
        utxo, genesis, alice, bob = world
        tx = build_transaction(alice, utxo.spendable(alice.address), bob.address, 10, fee=2)
        assert validate_transaction(tx, utxo) == 2

    def test_coinbase_rejected_standalone(self, world):
        utxo, _, alice, _ = world
        with pytest.raises(ValidationError):
            validate_transaction(make_coinbase(alice.address, 1), utxo)

    def test_bad_signature_rejected(self, world, rng):
        utxo, genesis, alice, bob = world
        mallory = KeyPair.generate(rng)
        tx = build_transaction(alice, utxo.spendable(alice.address), bob.address, 10)
        from repro.blockchain.transaction import Transaction, TxInput

        stolen = Transaction(
            inputs=tuple(
                TxInput(i.prev_txid, i.prev_index, mallory.public_key, i.signature)
                for i in tx.inputs
            ),
            outputs=tx.outputs,
        )
        with pytest.raises(ValidationError):
            validate_transaction(stolen, utxo)


class TestBlockTransactions:
    def test_valid_block_with_fees(self, world):
        utxo, genesis, alice, bob = world
        tx = build_transaction(alice, utxo.spendable(alice.address), bob.address, 10, fee=3)
        block = make_block(genesis, [tx], alice, BITCOIN.block_reward + 3)
        assert validate_block_transactions(block, utxo, BITCOIN) == 3

    def test_missing_coinbase_rejected(self, world):
        utxo, genesis, alice, bob = world
        tx = build_transaction(alice, utxo.spendable(alice.address), bob.address, 10)
        block = assemble_block(genesis.header, [tx], 1.0, MAX_TARGET)
        with pytest.raises(ValidationError):
            validate_block_transactions(block, utxo, BITCOIN)

    def test_intra_block_double_spend_rejected(self, world):
        utxo, genesis, alice, bob = world
        spendable = utxo.spendable(alice.address)
        tx1 = build_transaction(alice, spendable, bob.address, 10)
        tx2 = build_transaction(alice, spendable, bob.address, 20)
        block = make_block(genesis, [tx1, tx2], alice, BITCOIN.block_reward)
        with pytest.raises(DoubleSpendError):
            validate_block_transactions(block, utxo, BITCOIN)

    def test_chained_spend_within_block_allowed(self, world):
        utxo, genesis, alice, bob = world
        tx1 = build_transaction(alice, utxo.spendable(alice.address), bob.address, 100)
        # bob immediately spends the output created by tx1 in the same block
        tx2 = build_transaction(bob, [(tx1.txid, 0, 100)], alice.address, 40)
        block = make_block(genesis, [tx1, tx2], alice, BITCOIN.block_reward)
        assert validate_block_transactions(block, utxo, BITCOIN) == 0

    def test_excessive_coinbase_rejected(self, world):
        utxo, genesis, alice, _ = world
        block = make_block(genesis, [], alice, BITCOIN.block_reward + 1)
        with pytest.raises(ValidationError):
            validate_block_transactions(block, utxo, BITCOIN)

    def test_second_coinbase_rejected(self, world):
        utxo, genesis, alice, _ = world
        extra_cb = make_coinbase(alice.address, 1, nonce=55)
        block = make_block(genesis, [extra_cb], alice, BITCOIN.block_reward)
        with pytest.raises(ValidationError):
            validate_block_transactions(block, utxo, BITCOIN)


class TestApplyRevert:
    def test_apply_then_revert_round_trip(self, world):
        utxo, genesis, alice, bob = world
        tx = build_transaction(alice, utxo.spendable(alice.address), bob.address, 10)
        block = make_block(genesis, [tx], alice, BITCOIN.block_reward)
        balance_before = utxo.balance(alice.address)
        undos = apply_block(block, utxo, BITCOIN)
        assert utxo.balance(bob.address) == 10
        revert_block(undos, utxo)
        assert utxo.balance(alice.address) == balance_before
        assert utxo.balance(bob.address) == 0

    def test_apply_rejects_invalid_without_mutation(self, world):
        utxo, genesis, alice, _ = world
        bad = make_block(genesis, [], alice, BITCOIN.block_reward + 99)
        total_before = utxo.total_value()
        with pytest.raises(ValidationError):
            apply_block(bad, utxo, BITCOIN)
        assert utxo.total_value() == total_before
