"""Tests for repro.blockchain.state and gas (Ethereum account model)."""

import pytest

from repro.common.errors import InsufficientFundsError, ValidationError
from repro.crypto.keys import KeyPair
from repro.blockchain.gas import (
    GAS_LIMIT_BOUND_DIVISOR,
    MIN_GAS_LIMIT,
    TX_BASE_GAS,
    adjust_gas_limit,
    intrinsic_gas,
)
from repro.blockchain.state import AccountState
from repro.blockchain.transaction import sign_account_transaction


@pytest.fixture
def actors(rng):
    return KeyPair.generate(rng), KeyPair.generate(rng), KeyPair.generate(rng)


class TestGas:
    def test_plain_transfer_costs_base_gas(self, actors):
        alice, bob, _ = actors
        tx = sign_account_transaction(alice, 0, bob.address, 1)
        assert intrinsic_gas(tx) == TX_BASE_GAS

    def test_data_bytes_priced(self, actors):
        alice, bob, _ = actors
        tx = sign_account_transaction(
            alice, 0, bob.address, 1, data=b"\x00\x01\x02"
        )
        assert intrinsic_gas(tx) == TX_BASE_GAS + 4 + 68 + 68

    def test_limit_steps_are_bounded(self):
        parent = 8_000_000
        step = parent // GAS_LIMIT_BOUND_DIVISOR
        assert adjust_gas_limit(parent, 0, 100_000_000) == parent + step
        assert adjust_gas_limit(parent, 0, 1_000) == max(parent - step, MIN_GAS_LIMIT)

    def test_limit_converges_to_desired(self):
        limit = 8_000_000
        for _ in range(3000):
            limit = adjust_gas_limit(limit, 0, 10_000_000)
        assert limit == 10_000_000

    def test_limit_floor(self):
        assert adjust_gas_limit(MIN_GAS_LIMIT, 0, 1) == MIN_GAS_LIMIT

    def test_below_floor_parent_rejected(self):
        with pytest.raises(ValueError):
            adjust_gas_limit(100, 0, 100)


class TestAccountState:
    def test_credit_and_balance(self, actors):
        alice, _, _ = actors
        state = AccountState()
        state.credit(alice.address, 500)
        assert state.balance(alice.address) == 500
        assert state.nonce(alice.address) == 0

    def test_transfer_moves_value_and_fees(self, actors):
        alice, bob, miner = actors
        state = AccountState()
        state.credit(alice.address, 100_000)
        tx = sign_account_transaction(alice, 0, bob.address, 1_000, gas_price=1)
        receipt = state.apply_transaction(tx, miner.address)
        assert receipt.success and receipt.gas_used == TX_BASE_GAS
        assert state.balance(bob.address) == 1_000
        assert state.balance(miner.address) == TX_BASE_GAS
        assert state.balance(alice.address) == 100_000 - 1_000 - TX_BASE_GAS
        assert state.nonce(alice.address) == 1

    def test_nonce_replay_rejected(self, actors):
        alice, bob, miner = actors
        state = AccountState()
        state.credit(alice.address, 100_000)
        tx = sign_account_transaction(alice, 0, bob.address, 10, gas_price=0)
        state.apply_transaction(tx, miner.address)
        with pytest.raises(ValidationError):
            state.apply_transaction(tx, miner.address)  # same nonce

    def test_future_nonce_rejected(self, actors):
        alice, bob, miner = actors
        state = AccountState()
        state.credit(alice.address, 100_000)
        tx = sign_account_transaction(alice, 5, bob.address, 10)
        with pytest.raises(ValidationError):
            state.apply_transaction(tx, miner.address)

    def test_underfunded_rejected(self, actors):
        alice, bob, miner = actors
        state = AccountState()
        state.credit(alice.address, 10)
        tx = sign_account_transaction(alice, 0, bob.address, 5, gas_price=1)
        with pytest.raises(InsufficientFundsError):
            state.apply_transaction(tx, miner.address)

    def test_gas_limit_below_intrinsic_rejected(self, actors):
        alice, bob, miner = actors
        state = AccountState()
        state.credit(alice.address, 10**9)
        tx = sign_account_transaction(alice, 0, bob.address, 1, gas_limit=100)
        with pytest.raises(ValidationError):
            state.apply_transaction(tx, miner.address)

    def test_total_supply_conserved_plus_reward(self, actors):
        alice, bob, miner = actors
        state = AccountState()
        state.credit(alice.address, 10**6)
        txs = [
            sign_account_transaction(alice, n, bob.address, 100, gas_price=1)
            for n in range(3)
        ]
        state.apply_block_transactions(txs, miner.address, block_reward=500)
        assert state.total_supply() == 10**6 + 500

    def test_receipts_cumulative_gas(self, actors):
        alice, bob, miner = actors
        state = AccountState()
        state.credit(alice.address, 10**9)
        txs = [
            sign_account_transaction(alice, n, bob.address, 1, gas_price=0)
            for n in range(3)
        ]
        receipts, total = state.apply_block_transactions(txs, miner.address, 0)
        assert total == 3 * TX_BASE_GAS
        assert [r.cumulative_gas for r in receipts] == [
            TX_BASE_GAS, 2 * TX_BASE_GAS, 3 * TX_BASE_GAS
        ]


class TestStateHistory:
    def test_rollback_restores_balances(self, actors):
        alice, bob, miner = actors
        state = AccountState()
        state.credit(alice.address, 10**6)
        checkpoint = state.checkpoint()
        tx = sign_account_transaction(alice, 0, bob.address, 1234, gas_price=0)
        state.apply_transaction(tx, miner.address)
        state.rollback_to(checkpoint)
        assert state.balance(alice.address) == 10**6
        assert state.balance(bob.address) == 0
        assert state.nonce(alice.address) == 0

    def test_root_deterministic_for_same_state(self, actors):
        alice, bob, miner = actors

        def build():
            state = AccountState()
            state.credit(alice.address, 10**6)
            tx = sign_account_transaction(alice, 0, bob.address, 10, gas_price=0)
            state.apply_transaction(tx, miner.address)
            return state.root_hash

        assert build() == build()

    def test_prune_history_keeps_live_state(self, actors):
        alice, bob, miner = actors
        state = AccountState()
        state.credit(alice.address, 10**9)
        for n in range(10):
            tx = sign_account_transaction(alice, n, bob.address, 1, gas_price=0)
            state.apply_transaction(tx, miner.address)
        store_before = state.store_size_bytes()
        freed = state.prune_history()
        assert freed > 0
        assert state.store_size_bytes() == store_before - freed
        assert state.balance(bob.address) == 10
        assert state.live_size_bytes() == state.store_size_bytes()
