"""Integration tests for the networked tangle (repro.dag.tangle_node)."""

import pytest

from repro.crypto.keys import KeyPair
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.dag.tangle_node import TangleNode

LINK = LinkParams(latency_s=0.05, jitter_s=0.02)


@pytest.fixture
def tangle_net(rng):
    sim = Simulator(seed=6)
    net = Network(sim)
    nodes = [
        n for n in complete_topology(
            net, 5, lambda nid: TangleNode(nid, seed=int(nid[1:])), LINK
        )
        if isinstance(n, TangleNode)
    ]
    key = KeyPair.generate(rng)
    genesis = nodes[0].seed_genesis(key)
    for node in nodes[1:]:
        node.install_genesis(genesis)
    return sim, nodes, key


class TestReplication:
    def test_issued_transactions_reach_all_replicas(self, tangle_net):
        sim, nodes, key = tangle_net
        for i in range(10):
            nodes[i % len(nodes)].issue(key, f"p{i}".encode())
            sim.run(until=sim.now + 1)
        sim.run(until=sim.now + 5)
        sizes = {len(n.tangle) for n in nodes}
        assert sizes == {11}  # genesis + 10

    def test_concurrent_issuance_converges(self, tangle_net):
        sim, nodes, key = tangle_net
        # Everyone issues at once against the same initial view.
        for node in nodes:
            node.issue(key, node.node_id.encode())
        sim.run(until=sim.now + 5)
        assert {len(n.tangle) for n in nodes} == {6}
        # Replicas agree on the approval structure of the genesis.
        approver_sets = {
            tuple(sorted(h.hex for h in n.tangle.approvers(n.tangle.genesis_hash)))
            for n in nodes
        }
        assert len(approver_sets) == 1

    def test_out_of_order_arrivals_parked_and_recovered(self, tangle_net, rng):
        from repro.dag.tangle import issue_transaction
        from repro.net.message import Message

        sim, nodes, key = tangle_net
        # Build parent + child locally and deliver the child first.
        issuer = nodes[0]
        parent = issuer.issue(key, b"parent")
        tips = issuer.tangle.tips()
        child = issue_transaction(key, tips[0], tips[0], b"child", 50.0)
        target = nodes[-1]
        target.deliver(
            "test",
            Message(kind="tangle_tx", payload=child,
                    size_bytes=child.size_bytes, dedup_key=child.tx_hash),
        )
        assert child.tx_hash not in target.tangle
        assert target.stats.parked == 1
        sim.run(until=sim.now + 5)  # parent arrives via gossip
        target.deliver(
            "test",
            Message(kind="tangle_tx", payload=child,
                    size_bytes=child.size_bytes, dedup_key=child.tx_hash),
        )
        sim.run(until=sim.now + 5)
        assert child.tx_hash in target.tangle

    def test_no_cap_on_issuance_rate(self, tangle_net):
        """The §VI-B property carries over: every issued tx settles, the
        rate being bounded only by the simulated network."""
        sim, nodes, key = tangle_net
        count = 60
        for i in range(count):
            nodes[i % len(nodes)].issue(key, bytes([i]))
            sim.run(until=sim.now + 0.05)  # 20 TPS offered
        sim.run(until=sim.now + 10)
        assert all(len(n.tangle) == count + 1 for n in nodes)

    def test_old_transaction_confidence_converges_across_replicas(self, tangle_net, rng):
        sim, nodes, key = tangle_net
        first = nodes[0].issue(key, b"first")
        for i in range(20):
            nodes[i % len(nodes)].issue(key, bytes([i]))
            sim.run(until=sim.now + 0.5)
        sim.run(until=sim.now + 5)
        confidences = [
            n.tangle.confirmation_confidence(first.tx_hash, rng, samples=20)
            for n in nodes
        ]
        assert all(c > 0.8 for c in confidences)
