"""Tests for repro.crypto.merkle (Section II-A structures)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import sha256d
from repro.crypto.merkle import MerkleTree, merkle_root


def leaves(n):
    return [sha256d(bytes([i])) for i in range(n)]


class TestMerkleTree:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_single_leaf_root_is_leaf(self):
        (leaf,) = leaves(1)
        assert MerkleTree([leaf]).root == leaf

    def test_two_leaves(self):
        a, b = leaves(2)
        tree = MerkleTree([a, b])
        assert tree.root != a and tree.root != b
        assert tree.depth == 1

    def test_odd_leaf_duplication(self):
        # Bitcoin rule: [a, b, c] hashes like [a, b, c, c].
        a, b, c = leaves(3)
        assert MerkleTree([a, b, c]).root == MerkleTree([a, b, c, c]).root

    def test_root_changes_with_any_leaf(self):
        base = MerkleTree(leaves(8)).root
        tampered = leaves(8)
        tampered[3] = sha256d(b"tampered")
        assert MerkleTree(tampered).root != base

    def test_root_changes_with_order(self):
        ls = leaves(4)
        swapped = [ls[1], ls[0]] + ls[2:]
        assert MerkleTree(ls).root != MerkleTree(swapped).root

    def test_from_items(self):
        tree = MerkleTree.from_items([b"tx1", b"tx2"])
        assert tree.leaf_count == 2

    def test_merkle_root_helper_matches_tree(self):
        ls = leaves(7)
        assert merkle_root(ls) == MerkleTree(ls).root

    def test_merkle_root_empty_rejected(self):
        with pytest.raises(ValueError):
            merkle_root([])


class TestMerkleProof:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 8, 13, 33])
    def test_every_leaf_provable(self, count):
        tree = MerkleTree(leaves(count))
        for index in range(count):
            assert tree.proof(index).verify(tree.root)

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree(leaves(8))
        other = MerkleTree(leaves(9))
        assert not tree.proof(0).verify(other.root)

    def test_proof_out_of_range(self):
        tree = MerkleTree(leaves(4))
        with pytest.raises(IndexError):
            tree.proof(4)
        with pytest.raises(IndexError):
            tree.proof(-1)

    def test_proof_length_is_logarithmic(self):
        tree = MerkleTree(leaves(64))
        assert len(tree.proof(0).steps) == 6

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=40), st.data())
    def test_proof_round_trip_property(self, count, data):
        tree = MerkleTree(leaves(count))
        index = data.draw(st.integers(min_value=0, max_value=count - 1))
        proof = tree.proof(index)
        assert proof.verify(tree.root)
        assert proof.compute_root() == tree.root
