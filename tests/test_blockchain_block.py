"""Tests for repro.blockchain.block (Figure 1 structures)."""

import pytest

from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.crypto.pow import MAX_TARGET, difficulty_to_target, solve_pow
from repro.blockchain.block import (
    Block,
    assemble_block,
    build_genesis_block,
    build_genesis_with_allocations,
)
from repro.blockchain.transaction import build_transaction, make_coinbase


class TestGenesis:
    def test_no_predecessor(self, keypair):
        genesis = build_genesis_block(keypair.address, 1000)
        assert genesis.is_genesis()
        assert genesis.parent_id.is_zero()
        assert genesis.height == 0

    def test_mints_initial_supply(self, keypair):
        genesis = build_genesis_block(keypair.address, 1000)
        assert genesis.transactions[0].total_output() == 1000

    def test_allocations_genesis(self, keypairs):
        allocations = {kp.address: 100 * (i + 1) for i, kp in enumerate(keypairs[:3])}
        genesis = build_genesis_with_allocations(allocations)
        coinbase = genesis.transactions[0]
        assert coinbase.total_output() == 100 + 200 + 300
        assert len(coinbase.outputs) == 3

    def test_empty_allocations_rejected(self):
        with pytest.raises(ValueError):
            build_genesis_with_allocations({})


class TestHeaderAndLinking:
    def test_child_references_parent(self, keypair):
        genesis = build_genesis_block(keypair.address, 1000)
        child = assemble_block(
            parent=genesis.header,
            transactions=[make_coinbase(keypair.address, 50, nonce=1)],
            timestamp=1.0,
            target=MAX_TARGET,
        )
        assert child.parent_id == genesis.block_id
        assert child.height == 1

    def test_block_id_covers_nonce(self, keypair):
        genesis = build_genesis_block(keypair.address, 1000)
        bumped = Block(
            header=genesis.header.with_nonce(99), transactions=genesis.transactions
        )
        assert bumped.block_id != genesis.block_id

    def test_merkle_root_commits_to_body(self, keypair, rng):
        genesis = build_genesis_block(keypair.address, 1000)
        bob = KeyPair.generate(rng)
        coinbase = genesis.transactions[0]
        spend = build_transaction(keypair, [(coinbase.txid, 0, 1000)], bob.address, 10)
        block = assemble_block(
            parent=genesis.header,
            transactions=[make_coinbase(keypair.address, 50, nonce=1), spend],
            timestamp=1.0,
            target=MAX_TARGET,
        )
        assert block.merkle_root_matches()
        # Swap the body: commitment must break.
        forged = Block(header=block.header, transactions=(block.transactions[0],))
        assert not forged.merkle_root_matches()

    def test_size_is_header_plus_body(self, keypair):
        genesis = build_genesis_block(keypair.address, 1000)
        assert genesis.size_bytes == genesis.header.size_bytes + genesis.body_size_bytes

    def test_work_inverse_to_target(self, keypair):
        easy = assemble_block(None, [make_coinbase(keypair.address, 1)], 0.0, MAX_TARGET)
        hard = assemble_block(
            None, [make_coinbase(keypair.address, 1)], 0.0, MAX_TARGET // 1000
        )
        assert hard.header.work > easy.header.work * 500


class TestProofOfWork:
    def test_real_pow_round_trip(self, keypair):
        target = difficulty_to_target(64)
        candidate = assemble_block(
            None, [make_coinbase(keypair.address, 1)], 0.0, target
        )
        solution = solve_pow(candidate.header.pow_payload(), target)
        solved = Block(
            header=candidate.header.with_nonce(solution.nonce),
            transactions=candidate.transactions,
        )
        assert solved.header.check_proof_of_work()

    def test_unsolved_header_fails_hard_target(self, keypair):
        candidate = assemble_block(
            None, [make_coinbase(keypair.address, 1)], 0.0, 1
        )
        assert not candidate.header.check_proof_of_work()
