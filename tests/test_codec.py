"""Round-trip tests for the wire codecs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.common.types import Address, Hash
from repro.crypto.keys import KeyPair
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import assemble_block, build_genesis_block
from repro.blockchain.codec import (
    decode_account_transaction,
    decode_block,
    decode_header,
    decode_receipt,
    decode_transaction,
    encode_block,
)
from repro.blockchain.receipts import Receipt
from repro.blockchain.transaction import (
    build_transaction,
    make_coinbase,
    sign_account_transaction,
)
from repro.dag.blocks import make_open, make_send
from repro.dag.codec import decode_nano_block


class TestTransactionCodec:
    def test_utxo_round_trip(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        funding = make_coinbase(alice.address, 100)
        tx = build_transaction(alice, [(funding.txid, 0, 100)], bob.address, 40, fee=3)
        decoded = decode_transaction(tx.serialize())
        assert decoded == tx
        assert decoded.txid == tx.txid
        assert decoded.verify_input_signatures()

    def test_coinbase_round_trip(self, rng):
        cb = make_coinbase(KeyPair.generate(rng).address, 50, nonce=7)
        assert decode_transaction(cb.serialize()) == cb

    def test_trailing_bytes_rejected(self, rng):
        cb = make_coinbase(KeyPair.generate(rng).address, 50)
        with pytest.raises(ValidationError):
            decode_transaction(cb.serialize() + b"\x00")

    def test_account_round_trip(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        tx = sign_account_transaction(
            alice, 3, bob.address, 999, gas_limit=50_000, gas_price=7,
            data=b"\x01\x02\x03",
        )
        decoded = decode_account_transaction(tx.serialize())
        assert decoded == tx
        assert decoded.verify_signature()

    @settings(max_examples=25)
    @given(
        nonce=st.integers(min_value=0, max_value=2**32),
        value=st.integers(min_value=0, max_value=10**18),
        data=st.binary(max_size=64),
    )
    def test_account_round_trip_property(self, nonce, value, data):
        alice = KeyPair.from_seed(b"\x31" * 32)
        bob = KeyPair.from_seed(b"\x32" * 32)
        tx = sign_account_transaction(
            alice, nonce, bob.address, value, gas_limit=100_000, gas_price=2,
            data=data,
        )
        assert decode_account_transaction(tx.serialize()) == tx


class TestHeaderAndBlockCodec:
    def test_header_round_trip(self, rng):
        genesis = build_genesis_block(KeyPair.generate(rng).address, 100)
        decoded = decode_header(genesis.header.serialize())
        assert decoded == genesis.header
        assert decoded.block_id == genesis.block_id

    def test_header_with_proposer(self, rng):
        proposer = KeyPair.generate(rng).address
        block = assemble_block(
            None, [make_coinbase(proposer, 1)], 12.345, MAX_TARGET,
            proposer=proposer,
        )
        decoded = decode_header(block.header.serialize())
        assert decoded.proposer == proposer
        assert decoded.timestamp == pytest.approx(12.345)

    def test_block_round_trip_mixed_txs(self, rng):
        alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
        utxo_tx = make_coinbase(alice.address, 50, nonce=1)
        account_tx = sign_account_transaction(alice, 0, bob.address, 10)
        genesis = build_genesis_block(alice.address, 100)
        block = assemble_block(
            genesis.header, [utxo_tx, account_tx], 2.0, MAX_TARGET
        )
        decoded = decode_block(encode_block(block))
        assert decoded.block_id == block.block_id
        assert decoded.transactions == block.transactions

    def test_tampered_body_rejected(self, rng):
        alice = KeyPair.generate(rng)
        genesis = build_genesis_block(alice.address, 100)
        block = assemble_block(
            genesis.header, [make_coinbase(alice.address, 50, nonce=1)], 1.0,
            MAX_TARGET,
        )
        other = assemble_block(
            genesis.header, [make_coinbase(alice.address, 99, nonce=2)], 1.0,
            MAX_TARGET,
        )
        # Header from one block, body from another: Merkle check fails.
        frankenstein = encode_block(block)[: block.header.size_bytes] + encode_block(
            other
        )[other.header.size_bytes :]
        with pytest.raises(ValidationError):
            decode_block(frankenstein)

    def test_receipt_round_trip(self, rng):
        receipt = Receipt(
            txid=Hash(b"\x05" * 32), success=False, gas_used=21_000,
            cumulative_gas=63_000,
        )
        assert decode_receipt(receipt.serialize()) == receipt


class TestNanoCodec:
    def test_open_round_trip(self, rng):
        kp = KeyPair.generate(rng)
        block = make_open(kp, Hash.zero(), 500, representative=kp.address)
        decoded = decode_nano_block(block.serialize())
        assert decoded.block_hash == block.block_hash
        assert decoded.verify_signature()
        assert decoded.balance == 500

    def test_send_round_trip_preserves_work(self, rng):
        kp, dest = KeyPair.generate(rng), KeyPair.generate(rng)
        head = make_open(kp, Hash.zero(), 500, representative=kp.address)
        send = make_send(kp, head, dest.address, 123, work_difficulty=64)
        decoded = decode_nano_block(send.serialize())
        assert decoded == send
        assert decoded.verify_work(64)
        assert decoded.destination == dest.address

    def test_garbage_type_rejected(self, rng):
        kp = KeyPair.generate(rng)
        block = make_open(kp, Hash.zero(), 1, representative=kp.address)
        raw = bytearray(block.serialize())
        raw[0:8] = b"bogus\x00\x00\x00"
        with pytest.raises(ValidationError):
            decode_nano_block(bytes(raw))
