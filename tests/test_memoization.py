"""Memoized serialization/hash invariants (perf tentpole).

Blocks and transactions are frozen dataclasses, so canonical bytes and
digests are computed once via :class:`repro.common.memo.cached` and never
invalidated.  These tests pin the contract the caches rely on:

* repeat calls return the *same object* (identity, not just equality),
  proving the cache engages;
* cached values match what the object would hash to if recomputed from
  a structurally-equal twin, proving the cache never goes stale for
  immutable values.
"""

from repro.blockchain.block import build_genesis_block
from repro.blockchain.transaction import (
    build_transaction,
    make_coinbase,
    sign_account_transaction,
)
from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.dag.blocks import make_open


class TestTransactionMemoization:
    def test_serialize_returns_cached_object(self, keypair):
        tx = make_coinbase(keypair.address, 50)
        assert tx.serialize() is tx.serialize()
        assert tx.txid is tx.txid

    def test_twin_objects_agree(self, keypair):
        a = make_coinbase(keypair.address, 50, nonce=3)
        b = make_coinbase(keypair.address, 50, nonce=3)
        assert a is not b
        assert a.serialize() == b.serialize()
        assert a.txid == b.txid
        assert a.sighash() == b.sighash()

    def test_signed_transaction_caches_sighash(self, keypair, keypairs):
        tx = build_transaction(
            keypair,
            [(make_coinbase(keypair.address, 100).txid, 0, 100)],
            keypairs[1].address,
            40,
        )
        assert tx.sighash() is tx.sighash()
        assert tx.verify_input_signatures()
        # Verification does not perturb the cached digest.
        assert tx.sighash() is tx.sighash()

    def test_account_transaction_caches(self, keypair, keypairs):
        tx = sign_account_transaction(keypair, 0, keypairs[1].address, 25)
        assert tx.serialize() is tx.serialize()
        assert tx.txid is tx.txid
        assert tx.verify_signature()


class TestBlockMemoization:
    def test_block_id_and_size_cached(self, keypair):
        genesis = build_genesis_block(keypair.address, 1000)
        assert genesis.header.block_id is genesis.header.block_id
        assert genesis.header.serialize() is genesis.header.serialize()
        assert genesis.size_bytes == genesis.size_bytes

    def test_merkle_root_cached_and_correct(self, keypair):
        genesis = build_genesis_block(keypair.address, 1000)
        assert genesis.merkle_root_matches()
        assert genesis.compute_merkle_root() is genesis.compute_merkle_root()

    def test_pow_payload_excludes_nonce(self, keypair):
        header = build_genesis_block(keypair.address, 1000).header
        payload = header.pow_payload()
        assert payload is header.pow_payload()
        # The serialized header is the payload plus the 8-byte nonce.
        assert header.serialize() == payload + header.nonce.to_bytes(8, "big")


class TestNanoBlockMemoization:
    def test_block_hash_cached(self, rng):
        kp = KeyPair.generate(rng)
        block = make_open(kp, Hash.zero(), 1000, representative=kp.address)
        assert block.block_hash is block.block_hash
        assert block.serialize() is block.serialize()

    def test_twin_nano_blocks_agree(self, rng):
        seed = rng.getrandbits(256).to_bytes(32, "big")
        a = make_open(KeyPair.from_seed(seed), Hash.zero(), 1000,
                      representative=KeyPair.from_seed(seed).address)
        b = make_open(KeyPair.from_seed(seed), Hash.zero(), 1000,
                      representative=KeyPair.from_seed(seed).address)
        assert a is not b
        assert a.block_hash == b.block_hash
        assert a.serialize() == b.serialize()
