"""Tests for repro.blockchain.miner (Section III-A1 lottery)."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.crypto.pow import difficulty_to_target
from repro.blockchain.block import build_genesis_block
from repro.blockchain.miner import Miner, SimulatedMiner, mining_race
from repro.blockchain.transaction import make_coinbase


class TestRealMiner:
    def test_mined_block_passes_pow(self, keypair):
        genesis = build_genesis_block(keypair.address, 1000)
        miner = Miner(keypair.address)
        block = miner.mine_block(
            parent=genesis.header,
            transactions=[make_coinbase(keypair.address, 50, nonce=1)],
            timestamp=1.0,
            target=difficulty_to_target(32),
        )
        assert block is not None
        assert block.header.check_proof_of_work()
        assert block.parent_id == genesis.block_id
        assert miner.stats.blocks_mined == 1
        assert miner.stats.hash_attempts >= 1

    def test_bounded_attempts_can_fail(self, keypair):
        miner = Miner(keypair.address)
        block = miner.mine_block(
            parent=None,
            transactions=[make_coinbase(keypair.address, 1)],
            timestamp=0.0,
            target=1,  # effectively unsolvable
            max_attempts=5,
        )
        assert block is None
        assert miner.stats.blocks_mined == 0


class TestSimulatedMiner:
    def test_block_rate(self, keypair):
        miner = SimulatedMiner(keypair.address, 0.25, 600.0, random.Random(0))
        assert miner.block_rate == pytest.approx(0.25 / 600.0)

    def test_delay_mean_matches_rate(self, keypair):
        miner = SimulatedMiner(keypair.address, 0.5, 10.0, random.Random(1))
        samples = [miner.next_block_delay() for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(20.0, rel=0.05)

    def test_invalid_share_rejected(self, keypair):
        with pytest.raises(ValueError):
            SimulatedMiner(keypair.address, 0.0, 600.0, random.Random(0))
        with pytest.raises(ValueError):
            SimulatedMiner(keypair.address, 1.5, 600.0, random.Random(0))

    def test_make_block_unique_ids(self, keypair):
        miner = SimulatedMiner(keypair.address, 0.5, 10.0, random.Random(2))
        genesis = build_genesis_block(keypair.address, 1000)
        cb = [make_coinbase(keypair.address, 1, nonce=1)]
        a = miner.make_block(genesis.header, cb, 1.0, 2**256 - 1)
        b = miner.make_block(genesis.header, cb, 1.0, 2**256 - 1)
        assert a.block_id != b.block_id  # RNG nonce differentiates


class TestMiningRace:
    def test_win_rate_tracks_hash_power(self):
        """The E1 claim: leader-election win frequency ∝ hash power."""
        shares = [0.5, 0.3, 0.2]
        wins = mining_race(shares, rounds=20_000, rng=random.Random(3))
        total = sum(wins)
        for share, win_count in zip(shares, wins):
            assert win_count / total == pytest.approx(share, abs=0.02)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            mining_race([0.5, 0.2], 10, random.Random(0))

    def test_zero_share_never_wins(self):
        wins = mining_race([1.0, 0.0], 500, random.Random(1))
        assert wins[1] == 0
