"""Tests for repro.common.units."""

from repro.common.units import (
    GB,
    KB,
    MB,
    format_bytes,
    format_duration,
    format_tps,
)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert format_bytes(1_500) == "1.50 KB"

    def test_megabytes(self):
        assert format_bytes(2 * MB) == "2.00 MB"

    def test_gigabytes(self):
        assert format_bytes(145.95 * GB) == "145.95 GB"

    def test_negative(self):
        assert format_bytes(-1 * KB) == "-1.00 KB"


class TestFormatDuration:
    def test_milliseconds(self):
        assert format_duration(0.25) == "250.0 ms"

    def test_seconds(self):
        assert format_duration(15) == "15.0 s"

    def test_minutes(self):
        assert format_duration(600) == "10.0 min"

    def test_hours(self):
        assert format_duration(7200) == "2.0 h"

    def test_days(self):
        assert format_duration(172800) == "2.0 d"


class TestFormatTps:
    def test_small(self):
        assert format_tps(7.0) == "7.00 TPS"

    def test_visa_scale(self):
        assert format_tps(56_000) == "56.0k TPS"
