"""Fee-market behaviour under congestion (Section VI's backlog picture).

When offered load exceeds a chain's capacity, the mempool backs up
(Bitcoin had ~187k pending transactions at the paper's snapshot) and
miners pick by fee rate — so fees become the rationing mechanism.
"""

from dataclasses import replace

import pytest

from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.blockchain.transaction import build_transaction

#: A deliberately tiny chain: ~2 txs per block, one block per 20 s.
CONGESTED = replace(
    BITCOIN, target_block_interval_s=20.0, max_block_size_bytes=500,
    confirmation_depth=1,
)


@pytest.fixture
def congested_world():
    payers = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(30)]
    merchant = KeyPair.from_seed(b"\x7f" * 32)
    genesis = build_genesis_with_allocations(
        {kp.address: 10**6 for kp in payers}
    )
    sim = Simulator(seed=21)
    net = Network(sim)
    nodes = [
        n for n in complete_topology(
            net, 3, lambda nid: BlockchainNode(nid, CONGESTED, genesis), FAST_LINK
        )
        if isinstance(n, BlockchainNode)
    ]
    for i, node in enumerate(nodes):
        node.start_pow_mining(1 / 3, KeyPair.from_seed(bytes([90 + i]) * 32).address)
    return sim, nodes, payers, merchant


def submit_all(nodes, payers, merchant, fee_of):
    """Every payer submits one payment with a caller-chosen fee."""
    txs = []
    for index, payer in enumerate(payers):
        spendable = nodes[0].utxo.spendable(payer.address)
        tx = build_transaction(
            payer, spendable, merchant.address, 1_000, fee=fee_of(index)
        )
        nodes[0].submit_transaction(tx)
        txs.append(tx)
    return txs


class TestFeeMarket:
    def test_backlog_grows_under_congestion(self, congested_world):
        sim, nodes, payers, merchant = congested_world
        submit_all(nodes, payers, merchant, fee_of=lambda i: 1)
        sim.run(until=100)  # ~5 blocks x ~2 txs: most remain pending
        assert len(nodes[0].mempool) > len(payers) // 2

    def test_high_fee_transactions_confirm_first(self, congested_world):
        sim, nodes, payers, merchant = congested_world
        # Fees 1..30: the miner should clear high-fee txs first.
        txs = submit_all(nodes, payers, merchant, fee_of=lambda i: 1 + i)
        sim.run(until=150)
        confirmed_fees = [
            1 + i for i, tx in enumerate(txs) if nodes[0].confirmations(tx.txid) > 0
        ]
        pending_fees = [
            1 + i for i, tx in enumerate(txs) if nodes[0].confirmations(tx.txid) == 0
        ]
        assert confirmed_fees and pending_fees
        # Every confirmed fee beats the median pending fee: fee ordering
        # held (Poisson block timing adds a little noise at the margin).
        pending_fees.sort()
        median_pending = pending_fees[len(pending_fees) // 2]
        assert min(confirmed_fees) > median_pending - 5
        assert sum(confirmed_fees) / len(confirmed_fees) > sum(pending_fees) / len(
            pending_fees
        )

    def test_miners_collect_the_fees(self, congested_world):
        sim, nodes, payers, merchant = congested_world
        submit_all(nodes, payers, merchant, fee_of=lambda i: 10)
        sim.run(until=200)
        # Total supply = genesis + rewards; fees moved, never minted.
        expected = 30 * 10**6 + CONGESTED.block_reward * nodes[0].chain.height
        assert nodes[0].utxo.total_value() == expected

    def test_mempool_eviction_under_pressure(self, congested_world):
        sim, nodes, payers, merchant = congested_world
        submit_all(nodes, payers, merchant, fee_of=lambda i: 1 + i)
        pool = nodes[0].mempool
        kept = 10
        dropped = pool.evict(keep=kept)
        assert len(pool) == kept
        assert dropped > 0
        # Survivors are the highest-fee-rate entries.
        surviving_fees = sorted(pool._fees.values(), reverse=True)  # noqa: SLF001
        assert surviving_fees[-1] >= 20  # the top of the 1..30 fee ladder
