"""Tests for repro.confirmation.nakamoto (Section IV-A)."""

import pytest

from repro.confirmation.nakamoto import (
    attacker_success_probability,
    catch_up_probability,
    confirmations_for_confidence,
    success_curve,
)


class TestCatchUp:
    def test_zero_deficit_certain(self):
        assert catch_up_probability(0.3, 0) == 1.0

    def test_majority_always_wins(self):
        assert catch_up_probability(0.5, 10) == 1.0
        assert catch_up_probability(0.7, 100) == 1.0

    def test_geometric_decay(self):
        p1 = catch_up_probability(0.1, 1)
        p2 = catch_up_probability(0.1, 2)
        assert p2 == pytest.approx(p1**2)

    def test_known_value(self):
        # q=0.25: (0.25/0.75)^3 = (1/3)^3
        assert catch_up_probability(0.25, 3) == pytest.approx((1 / 3) ** 3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            catch_up_probability(1.0, 1)
        with pytest.raises(ValueError):
            catch_up_probability(0.3, -1)


class TestNakamotoFormula:
    def test_zero_confirmations_certain(self):
        assert attacker_success_probability(0.1, 0) == 1.0

    def test_monotone_decreasing_in_depth(self):
        probs = success_curve(0.2, 12)
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_monotone_increasing_in_share(self):
        assert attacker_success_probability(0.1, 6) < attacker_success_probability(
            0.3, 6
        )

    def test_whitepaper_reference_values(self):
        """Nakamoto's Section 11 table: q=0.1 ⇒ P<0.1%% at z=5;
        q=0.3 ⇒ z=24 needed for P<0.1%."""
        assert attacker_success_probability(0.1, 5) < 0.001
        assert attacker_success_probability(0.1, 4) > 0.001
        assert attacker_success_probability(0.3, 24) < 0.001
        assert attacker_success_probability(0.3, 23) > 0.001

    def test_majority_attacker_always_succeeds(self):
        assert attacker_success_probability(0.5, 100) == 1.0


class TestDepthSolver:
    def test_bitcoin_six_confirmation_regime(self):
        """The '6 confirmations' convention corresponds to ~10% attacker
        at ~0.1% risk (Nakamoto's own table gives z=6 for q=0.15/P<1%%...
        we check the solver brackets the convention sensibly)."""
        z = confirmations_for_confidence(0.1, 0.001)
        assert z == 5
        z = confirmations_for_confidence(0.15, 0.001)
        assert 6 <= z <= 9

    def test_deeper_for_stronger_attacker(self):
        weak = confirmations_for_confidence(0.1, 0.001)
        strong = confirmations_for_confidence(0.35, 0.001)
        assert strong > weak

    def test_majority_attacker_unsatisfiable(self):
        with pytest.raises(ValueError):
            confirmations_for_confidence(0.5, 0.001)

    def test_near_half_share_needs_extreme_depth(self):
        """Approaching share=0.5 the required depth blows up but stays
        finite and monotone — the solver must not loop forever, return a
        bogus small depth, or go non-monotone from float error."""
        depths = [
            confirmations_for_confidence(q, 0.001)
            for q in (0.40, 0.45, 0.47)
        ]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0] * 2
        assert depths[-1] > 500  # genuinely extreme this close to 1/2

    def test_just_below_half_exhausts_search_limit(self):
        """At share=0.49 the required depth exceeds the search limit; the
        solver reports that rather than hanging or overflowing (the naive
        lam**k/k! Poisson term raised OverflowError past depth ~140)."""
        with pytest.raises(ValueError, match="no depth under"):
            confirmations_for_confidence(0.49, 0.001)

    def test_just_above_and_exactly_half_rejected(self):
        for share in (0.5, 0.500001):
            with pytest.raises(ValueError):
                confirmations_for_confidence(share, 0.001)

    def test_risk_bounds_validated(self):
        with pytest.raises(ValueError):
            confirmations_for_confidence(0.1, 0.0)
        with pytest.raises(ValueError):
            confirmations_for_confidence(0.1, 1.0)
