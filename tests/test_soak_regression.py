"""Bounded-memory soak regression (marked ``soak``).

A sustained open-loop workload against live deployments with periodic
pruning attached: the pruned replica's ledger must plateau while the
unpruned control grows roughly linearly.  These runs simulate minutes of
traffic, so they are opt-in: ``pytest -m soak``.
"""

from dataclasses import replace

import pytest

from repro.blockchain.mempool import MempoolLimits
from repro.blockchain.params import BITCOIN
from repro.core.adapters import BlockchainLedger, DagLedger
from repro.net.link import FAST_LINK
from repro.workloads.open_loop import OpenLoopInjector

pytestmark = pytest.mark.soak

PARAMS = replace(BITCOIN, target_block_interval_s=15.0,
                 max_block_size_bytes=4_000, confirmation_depth=2)

DURATION_S = 480.0
RATE_TPS = 1.5
PRUNE_INTERVAL_S = 60.0


def run_soak(make_ledger):
    """Drive one pruned run and one control run; return their sampled
    ``(time, bytes)`` series plus the pruned run's ledger/report."""
    out = {}
    for label, pruned in (("pruned", True), ("control", False)):
        ledger = make_ledger(pruned)
        ledger.setup(8, 10**9)
        deployment = ledger.deployment()
        series = []
        deployment.simulator.schedule_periodic(
            PRUNE_INTERVAL_S,
            lambda: series.append(
                (deployment.simulator.now, ledger.serialized_size())
            ),
            until=DURATION_S,
        )
        injector = OpenLoopInjector.from_sim_stream(
            ledger, accounts=8, rate_tps=RATE_TPS, duration_s=DURATION_S
        )
        injector.start()
        ledger.advance(DURATION_S)
        out[label] = (series, ledger, injector.report)
    return out


class TestBlockchainSoak:
    def test_pruned_ledger_plateaus_while_control_grows(self):
        def make(pruned):
            return BlockchainLedger(
                params=PARAMS, node_count=3, link_params=FAST_LINK, seed=5,
                mempool_limits=MempoolLimits(max_count=400),
                prune_interval_s=PRUNE_INTERVAL_S if pruned else None,
                prune_keep_depth=8,
            )

        out = run_soak(make)
        pruned_series, pruned_ledger, report = out["pruned"]
        control_series, _, _ = out["control"]

        # The run actually serviced traffic.
        assert report.submitted > 0
        assert pruned_ledger.stats().entries_confirmed > 0

        # Control grows between the first and last samples...
        assert control_series[-1][1] > control_series[0][1] * 2
        # ...while the pruned replica stays bounded: its second half
        # never exceeds its mid-run size by much more than one prune
        # window's worth of fresh blocks.
        mid = len(pruned_series) // 2
        plateau = max(size for _, size in pruned_series[mid:])
        assert plateau < pruned_series[mid][1] * 1.5
        assert pruned_series[-1][1] < control_series[-1][1]

    def test_prune_stats_recorded(self):
        ledger = BlockchainLedger(
            params=PARAMS, node_count=3, link_params=FAST_LINK, seed=5,
            prune_interval_s=PRUNE_INTERVAL_S, prune_keep_depth=8,
        )
        ledger.setup(8, 10**9)
        injector = OpenLoopInjector.from_sim_stream(
            ledger, accounts=8, rate_tps=RATE_TPS, duration_s=240.0
        )
        injector.start()
        ledger.advance(240.0)
        assert len(ledger.prune_stats) == len(ledger.nodes)
        assert all(stats.ticks > 0 for stats in ledger.prune_stats)
        assert any(stats.blocks_pruned > 0 for stats in ledger.prune_stats)


class TestDagSoak:
    def test_pruned_lattice_plateaus_while_control_grows(self):
        def make(pruned):
            return DagLedger(
                node_count=4, representative_count=2, seed=5,
                prune_interval_s=PRUNE_INTERVAL_S if pruned else None,
            )

        out = run_soak(make)
        pruned_series, pruned_ledger, report = out["pruned"]
        control_series, _, _ = out["control"]

        assert report.submitted > 0
        assert pruned_ledger.stats().entries_confirmed > 0
        assert control_series[-1][1] > control_series[0][1] * 2
        mid = len(pruned_series) // 2
        plateau = max(size for _, size in pruned_series[mid:])
        assert plateau < pruned_series[mid][1] * 1.5
        assert pruned_series[-1][1] < control_series[-1][1]
