"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E9" in out and "F1" in out
        assert "bench_e9_blockchain_tps.py" in out

    def test_tps_table(self, capsys):
        assert main(["tps"]) == 0
        out = capsys.readouterr().out
        assert "bitcoin" in out and "visa" in out

    def test_tps_respects_tx_bytes(self, capsys):
        main(["tps", "--tx-bytes", "500"])
        heavy = capsys.readouterr().out
        main(["tps", "--tx-bytes", "250"])
        light = capsys.readouterr().out
        assert heavy != light

    def test_confirmation_table(self, capsys):
        assert main(["confirmation"]) == 0
        out = capsys.readouterr().out
        assert "10%" in out and "confirmations" in out

    def test_growth_table(self, capsys):
        assert main(["growth"]) == 0
        out = capsys.readouterr().out
        assert "145.95 GB" in out and "3.42 GB" in out

    def test_compare_end_to_end(self, capsys):
        code = main([
            "compare", "--accounts", "4", "--rate", "0.05",
            "--duration", "120", "--nodes", "3", "--block-interval", "10",
            "--depth", "2", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "entries confirmed" in out
        assert "nano" in out and "bitcoin" in out

    def test_report_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# Results report" in out
        assert "Sharding throughput" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "results.md"
        assert main(["report", "-o", str(target)]) == 0
        assert "# Results report" in target.read_text()

    def test_compare_ethereum_chain(self, capsys):
        code = main([
            "compare", "--chain", "ethereum", "--accounts", "4",
            "--rate", "0.05", "--duration", "120", "--nodes", "3",
            "--block-interval", "5", "--depth", "2", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ethereum" in out

    def test_bench_runs_one_trial(self, capsys):
        assert main(["bench", "E4", "--param", "depth=8", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "param: depth" in out and "8" in out
        assert "metric: p_success" in out

    def test_bench_unknown_experiment(self, capsys):
        assert main(["bench", "ZZZ"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bench_topology_scale_sets_total_nodes(self, capsys):
        code = main(["bench", "A10", "--topology-scale", "200",
                     "--param", "duration_s=10", "--param",
                     "sharded_shards=2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "param: total_nodes" in out and "200" in out
        assert "metric: fingerprint" in out
        assert "metric: sharded_reached" in out

    def test_bench_invalid_topology_scale_exits_two(self, capsys):
        assert main(["bench", "A10", "--topology-scale", "2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_requires_experiment_selection(self, capsys):
        assert main(["sweep"]) == 2
        assert "--experiment" in capsys.readouterr().err

    def test_sweep_writes_bench_json_and_caches(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "results"
        argv = [
            "sweep", "--experiment", "A3", "--param", "interval_s=15,600",
            "--trials", "2", "--jobs", "2", "--out-dir", str(out_dir),
        ]
        assert main(argv) == 0
        document = json.loads((out_dir / "BENCH_A3.json").read_text())
        assert document["schema"] == "repro.runner/bench.v1"
        assert document["counts"] == {
            "trials": 4, "ok": 4, "failed": 0, "cached": 0,
        }
        capsys.readouterr()
        assert main(argv) == 0  # second invocation: pure cache hits
        document = json.loads((out_dir / "BENCH_A3.json").read_text())
        assert document["counts"]["cached"] == 4
        assert document["cache"]["hits"] == 4

    def test_faults_run_recovers_and_dumps_trace(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.jsonl"
        code = main([
            "faults", "--nodes", "8", "--rate", "0.5", "--duration", "60",
            "--partition-at", "15", "--heal-after", "15",
            "--churn-nodes", "1", "--seed", "2", "--trace-out", str(target),
        ])
        assert code == 0  # full delivery after heal
        out = capsys.readouterr().out
        assert "100.0%" in out
        assert "dropped: partition" in out
        records = [json.loads(line)
                   for line in target.read_text().splitlines()]
        assert records
        kinds = {r["kind"] for r in records}
        assert {"schedule", "deliver", "partition", "heal"} <= kinds

    def test_fuzz_accepts_topology_scale(self, capsys):
        code = main([
            "fuzz", "--seeds", "1", "--paradigm", "blockchain",
            "--topology-scale", "500",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "scale=500" in err  # the profile describes its scale

    def test_soak_reports_the_scaled_tier(self, capsys):
        main([
            "soak", "--duration", "60", "--rate", "2",
            "--topology-scale", "2000", "--seed", "1",
        ])
        err = capsys.readouterr().err
        assert "1997 modeled nodes" in err
        assert "modeled deliveries" in err
