"""Cross-paradigm parity matrix (``pytest -m parity``).

Every node type on the shared protocol stack gets the same treatment:
ten artifacts emitted from a never-faulted node under one of four fault
scenarios (baseline / churn / partition / blackhole).  The stack's
contract — offline republish, dependency parking, retry on arrival,
revival on heal and restart, together with the gossip layer's own
park-and-retry — must produce **eventual delivery**: identical replica
state everywhere and zero stuck intake entries, regardless of paradigm.

This is the matrix ISSUE 5 asks for: before the stack, each node class
hand-rolled its own buffer loop and each paradigm failed these scenarios
in its own way (NanoNode only gained republish-on-reconnect after the
fuzzer caught it; TangleNode's pending-parent buffer grew without bound
and never revived on heal; BlockchainNode leaned on the ChainStore
orphan pool below the stats counters).
"""

import hashlib
import random

import pytest

from repro.check.monitor import intake_backlog
from repro.common.types import Hash
from repro.consensus import BftNode, BftPayment
from repro.crypto.keys import KeyPair
from repro.faults import FaultInjector
from repro.net.link import FAST_LINK
from repro.net.message import Message
from repro.net.network import Network
from repro.net.sharded_plane import ShardedMessagePlane
from repro.net.topology import complete_topology
from repro.protocol import protocol_nodes
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import MSG_BLOCK, BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.dag.byteball_node import ByteballNode
from repro.dag.node import NanoNode
from repro.dag.params import NanoParams
from repro.dag.tangle_node import TangleNode

pytestmark = pytest.mark.parity

NODE_COUNT = 5
ARTIFACTS = 10
#: Artifact i is emitted at t = 1 + 2i (all inside the fault windows).
EMIT_TIMES = [1.0 + 2.0 * i for i in range(ARTIFACTS)]
#: Gossip's retransmit backoff tops out at 30s; healed/restarted nodes
#: are kicked immediately, so this settles every scenario with margin.
SETTLE_UNTIL = 150.0


# ---------------------------------------------------------------------------
# Fault scenarios (node n0 — the emitter — is never faulted)
# ---------------------------------------------------------------------------


def no_faults(injector):
    pass


def churn_faults(injector):
    injector.crash_at(4.0, "n3", duration_s=8.0)
    injector.crash_at(9.0, "n4", duration_s=8.0)


def partition_faults(injector):
    injector.partition_at(3.0, [["n0", "n1", "n2"], ["n3", "n4"]], heal_after_s=12.0)


def blackhole_faults(injector):
    injector.blackhole_at(3.0, "n0", "n3", duration_s=12.0)
    injector.blackhole_at(3.0, "n1", "n4", duration_s=12.0)


SCENARIOS = {
    "baseline": no_faults,
    "churn": churn_faults,
    "partition": partition_faults,
    "blackhole": blackhole_faults,
}


# ---------------------------------------------------------------------------
# Paradigm harnesses: build() -> (simulator, network, nodes, emit, state)
# where emit(i) creates artifact i on n0 and state(node) is the replica
# state that must converge.
# ---------------------------------------------------------------------------


def build_blockchain(seed, plane=None):
    key = KeyPair.from_seed(bytes([1]) * 32)
    genesis = build_genesis_with_allocations({key.address: 1_000_000})
    sim = Simulator(seed=seed)
    net = plane(sim) if plane is not None else Network(sim)
    factory = lambda nid: BlockchainNode(nid, BITCOIN, genesis)  # noqa: E731
    nodes = protocol_nodes(complete_topology(net, NODE_COUNT, factory, FAST_LINK))
    producer = nodes[0]

    def emit(i):
        # Slot-style manual production (no PoW lottery): deterministic,
        # and every block still travels the full stack like a mined one.
        block = producer.create_block_template(timestamp=sim.now, proposer=key.address)
        producer.receive_block(block)
        producer.transport.publish(
            block,
            Message(kind=MSG_BLOCK, payload=block,
                    size_bytes=block.size_bytes, dedup_key=block.block_id),
        )

    def state(node):
        return tuple(b.block_id for b in node.chain.main_chain())

    return sim, net, nodes, emit, state


def build_nano(seed, plane=None):
    params = NanoParams(work_difficulty=1)
    sim = Simulator(seed=seed)
    net = plane(sim) if plane is not None else Network(sim)
    factory = lambda nid: NanoNode(nid, params)  # noqa: E731
    nodes = protocol_nodes(complete_topology(net, NODE_COUNT, factory, FAST_LINK))
    genesis_key = KeyPair.from_seed(bytes([2]) * 32)
    genesis = nodes[0].seed_genesis(genesis_key, supply=10**12)
    nodes[0].add_account(genesis_key)
    for node in nodes[1:]:
        node.lattice.install_genesis(genesis)
    rng = random.Random(99)
    destinations = [KeyPair.generate(rng).address for _ in range(ARTIFACTS)]

    def emit(i):
        nodes[0].send_payment(genesis_key.address, destinations[i], 1_000)

    def state(node):
        return frozenset(node.lattice._blocks)  # noqa: SLF001

    return sim, net, nodes, emit, state


def build_tangle(seed, plane=None):
    sim = Simulator(seed=seed)
    net = plane(sim) if plane is not None else Network(sim)
    factory = lambda nid: TangleNode(nid, seed=int(nid[1:]))  # noqa: E731
    nodes = protocol_nodes(complete_topology(net, NODE_COUNT, factory, FAST_LINK))
    key = KeyPair.from_seed(bytes([3]) * 32)
    genesis = nodes[0].seed_genesis(key)
    for node in nodes[1:]:
        node.install_genesis(genesis)

    def emit(i):
        nodes[0].issue(key, f"tx{i}".encode())

    def state(node):
        return frozenset(node.tangle._txs)  # noqa: SLF001

    return sim, net, nodes, emit, state


def build_byteball(seed, plane=None):
    sim = Simulator(seed=seed)
    net = plane(sim) if plane is not None else Network(sim)
    witness = KeyPair.from_seed(bytes([4]) * 32)
    factory = lambda nid: ByteballNode(nid, [witness.address])  # noqa: E731
    nodes = protocol_nodes(complete_topology(net, NODE_COUNT, factory, FAST_LINK))
    genesis = nodes[0].seed_genesis(witness)
    for node in nodes[1:]:
        node.install_genesis(genesis)

    def emit(i):
        nodes[0].issue(witness, f"u{i}".encode())

    def state(node):
        return frozenset(node.dag._units)  # noqa: SLF001

    return sim, net, nodes, emit, state


def build_bft(seed, plane=None):
    sim = Simulator(seed=seed)
    net = plane(sim) if plane is not None else Network(sim)
    # One payment per block (max_batch=1): every emitted artifact becomes
    # its own committed entry, matching the matrix's `> ARTIFACTS` bar.
    factory = lambda nid: BftNode(nid, max_batch=1)  # noqa: E731
    nodes = protocol_nodes(complete_topology(net, NODE_COUNT, factory, FAST_LINK))
    roster = [n.node_id for n in nodes]
    for node in nodes:
        node.configure_validators(roster)
        node.fund({i: 1_000_000 for i in range(NODE_COUNT)})
        node.start()

    def emit(i):
        payment = BftPayment(
            payment_id=Hash(hashlib.sha256(f"parity:{i}".encode()).digest()),
            sender=i % NODE_COUNT,
            recipient=(i + 1) % NODE_COUNT,
            amount=10 + i,
        )
        nodes[0].submit_payment(payment)

    def state(node):
        return tuple(node.committed)

    return sim, net, nodes, emit, state


PARADIGMS = {
    "blockchain": build_blockchain,
    "nano": build_nano,
    "tangle": build_tangle,
    "byteball": build_byteball,
    "bft": build_bft,
}


# ---------------------------------------------------------------------------
# The matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("paradigm", sorted(PARADIGMS))
def test_eventual_delivery(paradigm, scenario):
    sim, net, nodes, emit, state = PARADIGMS[paradigm](seed=7)
    injector = FaultInjector(net)
    SCENARIOS[scenario](injector)
    for i, t in enumerate(EMIT_TIMES):
        sim.schedule_at(t, lambda i=i: emit(i), label=f"emit:{i}")
    sim.run(until=SETTLE_UNTIL)

    reference = state(nodes[0])
    assert len(reference) > ARTIFACTS  # genesis + every emitted artifact
    for node in nodes[1:]:
        assert state(node) == reference, f"{node.node_id} diverged under {scenario}"
    assert intake_backlog(nodes) == {}, "stuck intake entries after settling"


#: Gossip paradigms only: BFT quorum traffic is point-to-point, which
#: the crowd plane deliberately rejects (see build_deployment).
GOSSIP_PARADIGMS = ("blockchain", "byteball", "nano", "tangle")


def _sharded_plane(sim):
    return ShardedMessagePlane(sim, total_nodes=50, shards=2,
                               link=FAST_LINK, seed=321)


@pytest.mark.parametrize("paradigm", sorted(GOSSIP_PARADIGMS))
def test_sharded_plane_column(paradigm):
    """The matrix's sharded column: the same replicas carried by a
    50-node :class:`ShardedMessagePlane` crowd settle to the exact
    plane's replica state with zero stuck intake — every broadcast is a
    real crowd propagation, not a direct link."""
    sim, net, nodes, emit, state = PARADIGMS[paradigm](seed=7)
    for i, t in enumerate(EMIT_TIMES):
        sim.schedule_at(t, lambda i=i: emit(i), label=f"emit:{i}")
    sim.run(until=SETTLE_UNTIL)
    exact_reference = state(nodes[0])

    sim2, net2, nodes2, emit2, state2 = PARADIGMS[paradigm](
        seed=7, plane=_sharded_plane)
    for i, t in enumerate(EMIT_TIMES):
        sim2.schedule_at(t, lambda i=i: emit2(i), label=f"emit:{i}")
    sim2.run(until=SETTLE_UNTIL)
    try:
        assert state2(nodes2[0]) == exact_reference, \
            f"{paradigm} replica state drifted between planes"
        for node in nodes2[1:]:
            assert state2(node) == exact_reference, \
                f"{node.node_id} diverged on the sharded plane"
        assert intake_backlog(nodes2) == {}, \
            "stuck intake entries on the sharded plane"
        assert net2.plane_stats()["messages_modeled"] > 0
    finally:
        net2.close()


@pytest.mark.parametrize("paradigm", sorted(PARADIGMS))
def test_layer_counters_flow_through_fault_injector(paradigm):
    """The per-layer counters every paradigm now exposes are visible
    through the shared interfaces (no isinstance on concrete nodes)."""
    sim, net, nodes, emit, state = PARADIGMS[paradigm](seed=11)
    injector = FaultInjector(net)
    partition_faults(injector)
    for i, t in enumerate(EMIT_TIMES):
        sim.schedule_at(t, lambda i=i: emit(i), label=f"emit:{i}")
    sim.run(until=SETTLE_UNTIL)
    counters = injector.protocol_counters()
    assert counters["transport.published"] >= ARTIFACTS
    for key in ("intake.parked", "intake.retried", "intake.revived",
                "intake.backlog", "transport.republished"):
        assert key in counters
    assert counters["intake.backlog"] == 0.0
