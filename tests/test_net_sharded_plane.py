"""Tests for the sharded message plane (repro.net.sharded_plane).

The plane's contract has three load-bearing pieces: it satisfies the
:class:`~repro.protocol.interfaces.MessagePlane` seam (so protocol code
cannot tell it from the exact :class:`Network`), every broadcast is
timed by an epoch-barrier crowd propagation over the whole modeled
population, and the crowd fingerprint is byte-identical between jobs=1
and jobs=N (scheduling must never leak into results).
"""

import pytest

from repro.core.deploy import build_deployment
from repro.net.aggregate import TopologyScale
from repro.net.link import FAST_LINK
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.sharded_plane import ShardedMessagePlane
from repro.net.topology import complete_topology
from repro.protocol.interfaces import MessagePlane
from repro.sim.simulator import Simulator
from repro.workloads.generators import PaymentEvent


def make_message(payload="x", size=100):
    return Message(kind="test", payload=payload, size_bytes=size)


class Recorder(NetworkNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def handle_message(self, sender_id, message):
        self.received.append((sender_id, message.payload))


def build_plane(total_nodes=100, shards=2, jobs=1, seed=11, replicas=4):
    sim = Simulator(seed=1)
    net = ShardedMessagePlane(sim, total_nodes=total_nodes, shards=shards,
                              jobs=jobs, seed=seed, link=FAST_LINK)
    nodes = complete_topology(net, replicas, Recorder, FAST_LINK)
    return sim, net, nodes


class TestMessagePlaneContract:
    def test_exact_network_is_the_reference_implementation(self):
        assert isinstance(Network(Simulator(seed=0)), MessagePlane)

    def test_sharded_plane_satisfies_the_interface(self):
        sim, net, nodes = build_plane()
        try:
            assert isinstance(net, MessagePlane)
        finally:
            net.close()

    def test_plane_counters_extend_reference_counters(self):
        sim, net, nodes = build_plane()
        try:
            nodes[0].broadcast(make_message("a"))
            sim.run()
            counters = net.plane_counters()
            for key in ("plane.messages_delivered", "plane.messages_lost",
                        "plane.bytes_transferred", "plane.pending_retries",
                        "plane.messages_modeled",
                        "plane.modeled_deliveries"):
                assert key in counters
            assert counters["plane.messages_modeled"] == 1.0
        finally:
            net.close()


class TestCrowdDelivery:
    def test_broadcast_reaches_every_replica_through_the_crowd(self):
        sim, net, nodes = build_plane(total_nodes=100, replicas=4)
        try:
            nodes[0].broadcast(make_message("hello"))
            sim.run()
            for node in nodes[1:]:
                assert [p for _, p in node.received] == ["hello"]
            stats = net.plane_stats()
            assert stats["boundary_nodes"] == 4
            assert stats["modeled_nodes"] == 96
            assert stats["messages_modeled"] == 1
            assert stats["propagation_max_s"] > 0
        finally:
            net.close()

    def test_duplicate_broadcasts_are_suppressed(self):
        sim, net, nodes = build_plane()
        try:
            message = make_message("once")
            nodes[0].broadcast(message)
            sim.run()
            nodes[1].broadcast(message)  # same dedup key, already seen
            sim.run()
            assert net.plane_stats()["messages_modeled"] == 2
            for node in nodes[2:]:
                assert [p for _, p in node.received] == ["once"]
        finally:
            net.close()

    def test_add_node_after_crowd_freezes_raises(self):
        sim, net, nodes = build_plane()
        try:
            nodes[0].broadcast(make_message("a"))
            sim.run()
            with pytest.raises(RuntimeError):
                net.add_node(Recorder("late"))
        finally:
            net.close()

    def test_close_is_idempotent(self):
        sim, net, nodes = build_plane()
        nodes[0].broadcast(make_message("a"))
        sim.run()
        net.close()
        net.close()


class TestDeterminism:
    def run_messages(self, jobs):
        sim, net, nodes = build_plane(total_nodes=200, shards=4, jobs=jobs,
                                      seed=42)
        try:
            for i in range(3):
                nodes[i % len(nodes)].broadcast(make_message(f"m{i}"))
                sim.run()
            received = tuple(tuple(p for _, p in n.received) for n in nodes)
            return net.plane_fingerprint(), received, net.plane_stats()
        finally:
            net.close()

    def test_jobs_do_not_change_results(self):
        """The acceptance bar: jobs=1 and jobs=2 produce byte-identical
        crowd fingerprints, deliveries and stats."""
        assert self.run_messages(jobs=1) == self.run_messages(jobs=2)

    def test_seed_changes_the_fingerprint(self):
        base = self.run_messages(jobs=1)[0]
        sim, net, nodes = build_plane(total_nodes=200, shards=4, seed=43)
        try:
            for i in range(3):
                nodes[i % len(nodes)].broadcast(make_message(f"m{i}"))
                sim.run()
            assert net.plane_fingerprint() != base
        finally:
            net.close()


class TestFaultRecovery:
    def test_partitioned_replica_recovers_after_heal(self):
        sim, net, nodes = build_plane(total_nodes=100, replicas=4)
        try:
            names = [n.node_id for n in nodes]
            net.partition([names[:3], names[3:]])
            nodes[0].broadcast(make_message("cut"))
            sim.run(until=sim.now + 5.0)
            assert nodes[3].received == []
            net.heal()
            net.kick_retries()
            sim.run(until=sim.now + 120.0)
            assert [p for _, p in nodes[3].received] == ["cut"]
        finally:
            net.close()


class TestDeploymentIntegration:
    def test_bft_has_no_sharded_plane(self):
        scale = TopologyScale(total_nodes=1_000, plane="sharded")
        with pytest.raises(ValueError, match="sharded plane"):
            build_deployment("bft", node_count=4, topology_scale=scale)

    def test_sharded_deployment_reports_scale_stats(self):
        scale = TopologyScale(total_nodes=500, plane="sharded", shards=2)
        deployment = build_deployment(
            "blockchain", node_count=4, seed=3, topology_scale=scale)
        try:
            deployment.setup(4, 10**9)
            deployment.ledger.submit(PaymentEvent(
                time_s=0.0, sender_index=0, recipient_index=1, amount=5))
            deployment.ledger.advance(30.0)
            stats = deployment.scale_stats()
            assert stats["scaled"] == 1.0
            assert stats["boundary_nodes"] == 4
            assert stats["modeled_nodes"] == 496
            assert stats["messages_modeled"] > 0
        finally:
            deployment.close()
