"""Tests for repro.blockchain.spv (headers-only light client)."""

import pytest

from repro.common.errors import (
    InvalidProofOfWorkError,
    UnknownParentError,
    ValidationError,
)
from repro.crypto.keys import KeyPair
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import assemble_block, build_genesis_block
from repro.blockchain.chain import ChainStore
from repro.blockchain.spv import PaymentProof, SpvClient, make_payment_proof
from repro.blockchain.transaction import build_transaction, make_coinbase


@pytest.fixture
def full_node(rng):
    """A full node with 20 blocks; alice paid bob in block 5."""
    alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
    genesis = build_genesis_block(alice.address, 10**9)
    store = ChainStore(genesis)
    parent = genesis
    payment = None
    for height in range(1, 21):
        body = [make_coinbase(alice.address, 50, nonce=height)]
        if height == 5:
            payment = build_transaction(
                alice, [(genesis.transactions[0].txid, 0, 10**9)], bob.address, 777
            )
            body.append(payment)
        block = assemble_block(parent.header, body, float(height), MAX_TARGET)
        store.add_block(block)
        parent = block
    return store, payment, alice


class TestHeaderSync:
    def test_sync_follows_chain(self, full_node):
        store, _, _ = full_node
        client = SpvClient(store.genesis.header)
        added = client.sync_from(store)
        assert added == 20
        assert client.height == store.height
        assert client.tip().block_id == store.head.block_id

    def test_storage_is_headers_only(self, full_node):
        store, _, _ = full_node
        client = SpvClient(store.genesis.header)
        client.sync_from(store)
        assert client.storage_bytes() < store.total_size_bytes()
        assert client.storage_bytes() == sum(
            b.header.size_bytes for b in store.main_chain()
        )

    def test_non_linking_header_rejected(self, full_node):
        store, _, alice = full_node
        client = SpvClient(store.genesis.header)
        stray = assemble_block(
            store.head.header, [make_coinbase(alice.address, 1, nonce=99)],
            99.0, MAX_TARGET,
        )
        with pytest.raises(UnknownParentError):
            client.add_header(stray.header)

    def test_bad_pow_header_rejected(self, full_node):
        store, _, alice = full_node
        client = SpvClient(store.genesis.header)
        bogus = assemble_block(
            store.genesis.header, [make_coinbase(alice.address, 1, nonce=1)],
            1.0, target=1,  # unsolvable target, unsolved nonce
        )
        with pytest.raises(InvalidProofOfWorkError):
            client.add_header(bogus.header)

    def test_requires_genesis_start(self, full_node):
        store, _, _ = full_node
        with pytest.raises(ValidationError):
            SpvClient(store.head.header)


class TestReorgs:
    def test_adopts_heavier_chain(self, full_node, rng):
        store, _, alice = full_node
        client = SpvClient(store.genesis.header)
        client.sync_from(store)
        # Build a longer (heavier) competing header chain.
        competing = [store.genesis.header]
        parent = store.genesis
        for height in range(1, 25):
            block = assemble_block(
                parent.header, [make_coinbase(alice.address, 1, nonce=500 + height)],
                float(height), MAX_TARGET,
            )
            competing.append(block.header)
            parent = block
        assert client.adopt_chain(competing)
        assert client.height == 24

    def test_rejects_lighter_chain(self, full_node, rng):
        store, _, alice = full_node
        client = SpvClient(store.genesis.header)
        client.sync_from(store)
        short = [store.genesis.header, store.block_at_height(1).header]
        assert not client.adopt_chain(short)
        assert client.height == 20

    def test_rejects_foreign_genesis(self, full_node, rng):
        store, _, _ = full_node
        client = SpvClient(store.genesis.header)
        other_key = KeyPair.generate(rng)
        foreign = build_genesis_block(other_key.address, 5)
        assert not client.adopt_chain([foreign.header])


class TestPaymentVerification:
    def test_valid_payment_verifies_with_depth(self, full_node):
        store, payment, _ = full_node
        client = SpvClient(store.genesis.header)
        client.sync_from(store)
        block = store.block_at_height(5)
        proof = make_payment_proof(block, payment.txid)
        confirmations = client.verify_payment(proof)
        assert confirmations == 20 - 5 + 1
        assert client.is_confirmed(proof, depth=6)

    def test_proof_for_foreign_block_rejected(self, full_node, rng):
        store, payment, alice = full_node
        client = SpvClient(store.genesis.header)
        client.sync_from(store)
        orphan = assemble_block(
            store.genesis.header, [payment], 1.0, MAX_TARGET
        )
        proof = make_payment_proof(orphan, payment.txid)
        with pytest.raises(ValidationError):
            client.verify_payment(proof)

    def test_tampered_proof_rejected(self, full_node):
        store, payment, _ = full_node
        client = SpvClient(store.genesis.header)
        client.sync_from(store)
        block = store.block_at_height(5)
        honest = make_payment_proof(block, payment.txid)
        other_txid = block.transactions[0].txid
        forged = PaymentProof(
            txid=other_txid, block_id=honest.block_id,
            merkle_proof=honest.merkle_proof,  # proof of a different leaf
        )
        with pytest.raises(ValidationError):
            client.verify_payment(forged)

    def test_missing_tx_has_no_proof(self, full_node, rng):
        store, payment, alice = full_node
        block = store.block_at_height(3)
        with pytest.raises(ValidationError):
            make_payment_proof(block, payment.txid)  # payment is in block 5
