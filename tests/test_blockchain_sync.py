"""Tests for blockchain catch-up sync and determinism guarantees."""

from dataclasses import replace

import pytest

from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN

PARAMS = replace(BITCOIN, target_block_interval_s=10.0, confirmation_depth=3)


def build_world(seed=9, node_count=4):
    keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(2)]
    genesis = build_genesis_with_allocations({k.address: 10**6 for k in keys})
    sim = Simulator(seed=seed)
    net = Network(sim)
    nodes = [
        n for n in complete_topology(
            net, node_count, lambda nid: BlockchainNode(nid, PARAMS, genesis),
            FAST_LINK,
        )
        if isinstance(n, BlockchainNode)
    ]
    for i, node in enumerate(nodes):
        node.start_pow_mining(
            1 / node_count, KeyPair.from_seed(bytes([77 + i]) * 32).address
        )
    return sim, net, nodes, genesis


class TestSyncFrom:
    def test_lagging_replica_catches_up(self):
        sim, net, nodes, genesis = build_world()
        laggard = BlockchainNode("laggard", PARAMS, genesis)
        sim.run(until=300)
        adopted = laggard.sync_from(nodes[0])
        assert adopted == nodes[0].chain.height
        assert laggard.chain.head.block_id == nodes[0].chain.head.block_id
        # UTXO state replayed correctly too.
        assert laggard.utxo.total_value() == nodes[0].utxo.total_value()

    def test_sync_is_idempotent(self):
        sim, net, nodes, genesis = build_world()
        sim.run(until=200)
        laggard = BlockchainNode("laggard", PARAMS, genesis)
        laggard.sync_from(nodes[0])
        assert laggard.sync_from(nodes[0]) == 0

    def test_sync_applies_fork_choice(self):
        """Syncing from a lighter peer after following a heavier one
        must not regress the chain."""
        sim, net, nodes, genesis = build_world()
        sim.run(until=300)
        heavy, light = nodes[0], BlockchainNode("light", PARAMS, genesis)
        light.sync_from(heavy)
        short_peer = BlockchainNode("short", PARAMS, genesis)
        # short_peer only has genesis; syncing from it adopts nothing.
        assert light.sync_from(short_peer) == 0
        assert light.chain.head.block_id == heavy.chain.head.block_id


class TestStateSyncFrom:
    def test_join_from_pruned_peer(self):
        """A pruned peer's old bodies are gone; a checkpoint state sync
        still brings a joining replica to the same head and state."""
        from repro.storage.pruning import prune_chain

        sim, net, nodes, genesis = build_world()
        sim.run(until=400)
        peer = nodes[0]
        prune_chain(peer.chain, keep_depth=3)
        joiner = BlockchainNode("joiner", PARAMS, genesis)
        adopted = joiner.state_sync_from(peer, keep_depth=3)
        assert adopted == peer.chain.height
        assert joiner.chain.head.block_id == peer.chain.head.block_id
        assert joiner.utxo.total_value() == peer.utxo.total_value()

    def test_headers_only_below_pivot(self):
        sim, net, nodes, genesis = build_world()
        sim.run(until=400)
        peer = nodes[0]
        joiner = BlockchainNode("joiner", PARAMS, genesis)
        joiner.state_sync_from(peer, keep_depth=2)
        pivot = max(peer.chain.height - 2, 0)
        assert pivot > 0
        for block in joiner.chain.main_chain()[1:]:
            if block.height <= pivot:
                assert block.transactions == ()

    def test_snapshot_is_independent(self):
        sim, net, nodes, genesis = build_world()
        sim.run(until=300)
        peer = nodes[0]
        joiner = BlockchainNode("joiner", PARAMS, genesis)
        joiner.state_sync_from(peer, keep_depth=2)
        assert joiner.utxo is not peer.utxo
        before = peer.utxo.total_value()
        outpoint = next(iter(joiner.utxo._utxos))
        joiner.utxo._remove(outpoint)
        assert peer.utxo.total_value() == before

    def test_wire_accounting(self):
        sim, net, nodes, genesis = build_world()
        sim.run(until=300)
        peer = nodes[0]
        joiner = BlockchainNode("joiner", PARAMS, genesis)
        joiner.state_sync_from(peer, keep_depth=2)
        for node in (joiner, peer):
            assert node.transport.counters.state_syncs == 1
            assert node.transport.counters.state_sync_bytes > 0
        # The checkpoint sync ships less than a full-body replay would.
        full_bytes = sum(
            b.size_bytes for b in peer.chain.main_chain()[1:]
        )
        assert (joiner.transport.counters.state_sync_bytes
                < full_bytes + peer.utxo.serialized_size_bytes())


class TestDeterminism:
    def test_identical_seeds_identical_universe(self):
        """Full-stack regression guard: same seed ⇒ byte-identical chain
        heads, heights, and UTXO totals."""

        def fingerprint(seed):
            sim, net, nodes, _ = build_world(seed=seed)
            sim.run(until=400)
            observer = nodes[0]
            return (
                observer.chain.head.block_id.hex,
                observer.chain.height,
                observer.utxo.total_value(),
                net.messages_delivered,
            )

        assert fingerprint(123) == fingerprint(123)

    def test_different_seeds_differ(self):
        def head(seed):
            sim, net, nodes, _ = build_world(seed=seed)
            sim.run(until=400)
            return nodes[0].chain.head.block_id

        assert head(1) != head(2)
