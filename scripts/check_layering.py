#!/usr/bin/env python3
"""Layering lint for the protocol stack (CI-enforced).

The dependency contract that keeps ``repro.protocol`` paradigm-agnostic:

* ``repro.protocol`` must not import any paradigm package
  (``repro.blockchain``, ``repro.dag``, ``repro.consensus``) or anything
  built on top of the stack (``repro.core``, ``repro.check``,
  ``repro.faults``);
* the paradigm packages must not import each other —
  ``repro.blockchain``, ``repro.dag`` and ``repro.consensus`` (the BFT
  engine) are mutually independent peers on the shared stack;
* ``repro.net`` and ``repro.sim`` (the fabric below the stack) must not
  import ``repro.protocol`` or any paradigm package — with one carve-out:
  ``repro.protocol.interfaces``, the contract module that defines the
  :class:`MessagePlane` seam the fabric implements.  The interface module
  is the *only* protocol surface the fabric may see; reaching any other
  ``repro.protocol`` submodule from below is still a violation.

Violations are reported with file:line so the CI annotation is
clickable.  Exits non-zero on any violation.
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: package -> import prefixes it must never reach (directly)
FORBIDDEN = {
    "repro/protocol": (
        "repro.blockchain",
        "repro.dag",
        "repro.consensus",
        "repro.core",
        "repro.check",
        "repro.faults",
    ),
    "repro/blockchain": ("repro.dag", "repro.consensus"),
    "repro/dag": ("repro.blockchain", "repro.consensus"),
    "repro/consensus": (
        "repro.blockchain",
        "repro.dag",
        "repro.core",
        "repro.check",
        "repro.faults",
    ),
    "repro/net": (
        "repro.protocol",
        "repro.blockchain",
        "repro.dag",
        "repro.consensus",
    ),
    "repro/sim": (
        "repro.protocol",
        "repro.blockchain",
        "repro.dag",
        "repro.consensus",
    ),
}

#: package -> exact module names exempt from FORBIDDEN: the fabric may
#: import the MessagePlane contract (and nothing else) from the stack.
ALLOWED = {
    "repro/net": ("repro.protocol.interfaces",),
    "repro/sim": ("repro.protocol.interfaces",),
}


def imported_names(tree: ast.AST) -> list:
    """(lineno, module) for every import in ``tree``."""
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.extend((node.lineno, alias.name) for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            found.append((node.lineno, node.module))
    return found


def check() -> int:
    violations = []
    for package, banned in FORBIDDEN.items():
        allowed = ALLOWED.get(package, ())
        for path in sorted((SRC / package).rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for lineno, module in imported_names(tree):
                if module in allowed:
                    continue
                for prefix in banned:
                    if module == prefix or module.startswith(prefix + "."):
                        violations.append(
                            f"{path.relative_to(SRC.parent)}:{lineno}: "
                            f"{package.replace('/', '.')} must not import {module}"
                        )
    for violation in violations:
        print(violation)
    if violations:
        print(f"\n{len(violations)} layering violation(s)")
        return 1
    print("layering ok")
    return 0


if __name__ == "__main__":
    sys.exit(check())
