#!/usr/bin/env python3
"""Layering lint for the protocol stack (CI-enforced).

The dependency contract that keeps ``repro.protocol`` paradigm-agnostic:

* ``repro.protocol`` must not import any paradigm package
  (``repro.blockchain``, ``repro.dag``, ``repro.consensus``) or anything
  built on top of the stack (``repro.core``, ``repro.check``,
  ``repro.faults``);
* the paradigm packages must not import each other —
  ``repro.blockchain``, ``repro.dag`` and ``repro.consensus`` (the BFT
  engine) are mutually independent peers on the shared stack;
* ``repro.net`` (the fabric below the stack) must not import
  ``repro.protocol`` or any paradigm package.

Violations are reported with file:line so the CI annotation is
clickable.  Exits non-zero on any violation.
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: package -> import prefixes it must never reach (directly)
FORBIDDEN = {
    "repro/protocol": (
        "repro.blockchain",
        "repro.dag",
        "repro.consensus",
        "repro.core",
        "repro.check",
        "repro.faults",
    ),
    "repro/blockchain": ("repro.dag", "repro.consensus"),
    "repro/dag": ("repro.blockchain", "repro.consensus"),
    "repro/consensus": (
        "repro.blockchain",
        "repro.dag",
        "repro.core",
        "repro.check",
        "repro.faults",
    ),
    "repro/net": (
        "repro.protocol",
        "repro.blockchain",
        "repro.dag",
        "repro.consensus",
    ),
}


def imported_names(tree: ast.AST) -> list:
    """(lineno, module) for every import in ``tree``."""
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.extend((node.lineno, alias.name) for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            found.append((node.lineno, node.module))
    return found


def check() -> int:
    violations = []
    for package, banned in FORBIDDEN.items():
        for path in sorted((SRC / package).rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for lineno, module in imported_names(tree):
                for prefix in banned:
                    if module == prefix or module.startswith(prefix + "."):
                        violations.append(
                            f"{path.relative_to(SRC.parent)}:{lineno}: "
                            f"{package.replace('/', '.')} must not import {module}"
                        )
    for violation in violations:
        print(violation)
    if violations:
        print(f"\n{len(violations)} layering violation(s)")
        return 1
    print("layering ok")
    return 0


if __name__ == "__main__":
    sys.exit(check())
