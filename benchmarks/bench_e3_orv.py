"""E3 (§III-B): Open Representative Voting and anti-spam PoW.

Claims: weighted representative votes resolve conflicts (winner = most
voted weight); a conflict-free transaction needs no extra voting round
to settle; hashcash-style work throttles a spammer but not a normal user.
"""

import random
import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.dag.representatives import RepresentativeLedger
from repro.dag.voting import ElectionManager, Vote
from repro.workloads.attacks import SpamAttacker
from repro.metrics.tables import render_table


def make_vote(rep, block_hash, sequence=1):
    unsigned = Vote(rep.address, block_hash, sequence, rep.public_key)
    return Vote(
        rep.address, block_hash, sequence, rep.public_key,
        rep.sign(unsigned.signed_payload()),
    )


def run_weighted_election(weights=(55, 25, 20), seed=0):
    rng = random.Random(seed)
    reps = [KeyPair.generate(rng) for _ in weights]
    holders = [KeyPair.generate(rng) for _ in weights]
    ledger = RepresentativeLedger()
    for holder, rep, weight in zip(holders, reps, weights):
        ledger.set_account(holder.address, weight, rep.address)
        ledger.set_online(rep.address)
    manager = ElectionManager(ledger, quorum_fraction=0.5)
    account = KeyPair.generate(rng).address
    root = Hash(b"\x01" * 32)
    block_a, block_b = Hash(b"\xaa" * 32), Hash(b"\xbb" * 32)
    manager.open_election(account, root, [block_a, block_b])
    # Minority (25+20) backs B; majority (55) backs A.
    manager.record_conflict_vote(account, root, make_vote(reps[1], block_b))
    manager.record_conflict_vote(account, root, make_vote(reps[2], block_b))
    winner_after_minority = manager.election_for(account, root).winner
    winner = manager.record_conflict_vote(account, root, make_vote(reps[0], block_a))
    return winner_after_minority, winner, block_a, block_b, manager


def test_e3_weighted_conflict_resolution(benchmark):
    winner_after_minority, winner, block_a, block_b, manager = benchmark(
        run_weighted_election
    )
    # 45% combined weight is no quorum; the 55% representative decides.
    assert winner_after_minority is None
    assert winner == block_a
    report(
        "E3a ORV conflict resolution by weight",
        render_table(
            ["candidate", "backing weight", "wins"],
            [["block A", 55, winner == block_a], ["block B", 45, winner == block_b]],
        ),
    )


def conflict_free_run(node_count=5, seed=1):
    from repro.dag.bootstrap import build_nano_testbed, fund_accounts
    from repro.net.link import LinkParams

    tb = build_nano_testbed(
        node_count=node_count, representative_count=2, seed=seed,
        link_params=LinkParams(latency_s=0.05, jitter_s=0.01),
    )
    users = fund_accounts(tb, 2, 100_000, settle_time=2.0)
    tb.node_for(users[0].address).send_payment(
        users[0].address, users[1].address, 500
    )
    tb.simulator.run(until=tb.simulator.now + 5)
    elections = sum(n.elections.elections_started for n in tb.nodes)
    settled = tb.nodes[0].balance(users[1].address)
    return elections, settled


def test_e3_no_overhead_without_conflict(benchmark):
    """"For a transaction with no issues, no voting overhead is required"
    — settlement happens without any election."""
    elections, settled = benchmark(conflict_free_run)
    assert elections == 0
    assert settled == 100_500
    report(
        "E3b conflict-free settlement",
        f"transfer settled on all replicas with {elections} elections opened",
    )


def test_e3_antispam_throttle(benchmark):
    """Same hardware: one legit tx is instant, a flood is hours."""
    attacker = SpamAttacker(hashrate_hps=5e6, work_difficulty=1 << 16)

    cost = benchmark(attacker.campaign_cost, 500_000)
    single = attacker.campaign_cost(1)
    rows = [
        ["1 tx (normal user)", f"{single.wall_clock_s * 1000:.1f} ms"],
        ["500k txs (spammer)", f"{cost.wall_clock_s / 3600:.2f} h"],
        ["sustainable spam rate", f"{attacker.max_spam_tps:.1f} TPS"],
    ]
    assert single.wall_clock_s < 0.05
    assert cost.wall_clock_s > 3600
    report("E3c hashcash anti-spam economics", render_table(["actor", "cost"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E3"].default_params), **(params or {})}
    winner_after_minority, winner, block_a, _block_b, _manager = (
        run_weighted_election(seed=seed)
    )
    elections, settled = conflict_free_run(node_count=p["node_count"], seed=seed)
    attacker = SpamAttacker(hashrate_hps=5e6, work_difficulty=1 << 16)
    campaign = attacker.campaign_cost(p["spam_txs"])
    metrics = {
        "minority_decided_early": winner_after_minority is not None,
        "majority_wins": winner == block_a,
        "elections_opened": elections,
        "settled_balance": settled,
        "single_tx_s": attacker.campaign_cost(1).wall_clock_s,
        "spam_campaign_s": campaign.wall_clock_s,
        "spam_tps": attacker.max_spam_tps,
    }
    return make_result("E3", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
