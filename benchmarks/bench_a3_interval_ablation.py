"""Ablation A3: block interval — why Bitcoin waits 10 minutes.

Design choice ablated: the target block interval.  Short intervals give
fast first inclusion but high soft-fork (orphan) rates; long intervals
are stable but slow.  This is the trade-off that makes Bitcoin pick 600 s
and Ethereum accept ~1-in-15 uncle rates for 15 s blocks, and why both
compensate with *different confirmation depths* (Section IV-A).
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.confirmation.nakamoto import confirmations_for_confidence
from repro.confirmation.orphan import expected_orphan_rate
from repro.metrics.tables import render_table

PROPAGATION_DELAY_S = 5.0  # network-wide block propagation
ATTACKER = 0.15
RISK = 0.001


def sweep(intervals=(4.0, 15.0, 60.0, 150.0, 600.0)):
    rows = []
    for interval in intervals:
        orphan = expected_orphan_rate(PROPAGATION_DELAY_S, interval)
        depth = confirmations_for_confidence(ATTACKER, RISK)
        wait = depth * interval
        rows.append((interval, orphan, depth, wait))
    return rows


def test_a3_interval_ablation(benchmark):
    rows = benchmark(sweep)

    table = [
        [f"{interval:.0f} s", f"{orphan:.3f}", depth, f"{wait:,.0f} s"]
        for interval, orphan, depth, wait in rows
    ]
    orphans = [orphan for _, orphan, _, _ in rows]
    waits = [wait for *_, wait in rows]

    # Shorter intervals: more soft forks...
    assert all(a >= b for a, b in zip(orphans, orphans[1:]))
    # ...but faster absolute confirmation for a fixed depth rule.
    assert all(a <= b for a, b in zip(waits, waits[1:]))
    # Bitcoin's corner: ~1% orphans, hour-scale waits.
    interval600 = rows[-1]
    assert interval600[1] < 0.01
    assert interval600[3] > 3600
    # Ethereum's corner: ~28% same-height competition at 15 s with a 5 s
    # network — which is why it rewards uncles and waits more blocks.
    interval15 = rows[1]
    assert interval15[1] > 0.2

    report(
        "A3 block-interval ablation (5 s propagation, 15% attacker, 0.1% risk)",
        render_table(
            ["interval", "orphan rate", "depth needed", "confirmation wait"],
            table,
        ),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A3"].default_params), **(params or {})}
    orphan = expected_orphan_rate(p["propagation_delay_s"], p["interval_s"])
    depth = confirmations_for_confidence(p["attacker_share"], p["risk"])
    metrics = {
        "orphan_rate": orphan,
        "depth_needed": depth,
        "confirmation_wait_s": depth * p["interval_s"],
    }
    return make_result("A3", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
