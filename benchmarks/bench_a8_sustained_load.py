"""A8 (extension of §IV, §V, §VI): sustained-service SLOs.

The paper reports *unloaded* confirmation latencies (§IV) and a static
ledger-growth picture (§V).  This bench measures the steady-state
versions: open-loop Poisson traffic swept across offered loads gives a
p50/p99 confirmation-latency curve with a saturation knee per paradigm
(PoW blockchain vs Nano lattice), and a long soak with periodic live
pruning shows bounded ledger size where the unpruned control grows
linearly.
"""

import time
from dataclasses import replace

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result

from repro.blockchain.mempool import MempoolLimits
from repro.blockchain.params import BITCOIN
from repro.core.deploy import build_deployment
from repro.metrics.slo import detect_saturation_knee, load_point
from repro.metrics.tables import render_table
from repro.net.link import FAST_LINK
from repro.workloads.open_loop import OpenLoopInjector

#: Per-account funding: deep enough that backpressure, not bankruptcy,
#: is what rejects traffic.
FUNDING = 10**9


def _mini_chain_params():
    # A miniature Bitcoin: 15 s blocks, 4 KB caps ⇒ ~1 TPS ceiling, so
    # small offered-load sweeps straddle the knee quickly.
    return replace(
        BITCOIN, target_block_interval_s=15.0, max_block_size_bytes=4_000,
        confirmation_depth=2,
    )


def _blockchain_deployment(seed, limits=None, prune_interval_s=None,
                           keep_depth=8, topology_scale=None):
    return build_deployment(
        "blockchain",
        chain_params=_mini_chain_params(),
        node_count=3,
        link_params=FAST_LINK,
        seed=seed,
        mempool_limits=limits,
        prune_interval_s=prune_interval_s,
        prune_keep_depth=keep_depth,
        topology_scale=topology_scale,
    )


def _dag_deployment(seed, processing_tps, prune_interval_s=None,
                    topology_scale=None):
    return build_deployment(
        "dag",
        node_count=6,
        representative_count=3,
        seed=seed,
        processing_tps=processing_tps,
        prune_interval_s=prune_interval_s,
        topology_scale=topology_scale,
    )


def measure_load(ledger, accounts, offered_tps, duration_s, settle_s):
    """One load point: open-loop traffic, then a settle window."""
    ledger.setup(accounts, FUNDING)
    injector = OpenLoopInjector.from_sim_stream(
        ledger, accounts=accounts, rate_tps=offered_tps, duration_s=duration_s
    )
    injector.start()
    ledger.advance(duration_s + settle_s)
    stats = ledger.stats()
    return load_point(
        offered_tps,
        stats.confirmation_latencies_s,
        injector.report.submitted,
        duration_s,
        rejected=injector.report.rejected,
    )


def sweep(paradigm, loads, p, seed):
    """Fresh deployment per load level (levels are independent trials)."""
    points = []
    for offered in loads:
        if paradigm == "blockchain":
            ledger = _blockchain_deployment(seed).ledger
        else:
            ledger = _dag_deployment(
                seed, processing_tps=p["dag_processing_tps"]).ledger
        points.append(
            measure_load(ledger, p["accounts"], float(offered),
                         p["duration_s"], p["settle_s"])
        )
    return points


def scale_curve(paradigm, p, seed):
    """Loaded latency vs modeled population: the same offered load is
    replayed while ``topology_scale`` walks 10^2 -> 10^5 total nodes on
    the aggregate plane (clusters past the nesting threshold switch to
    the nested cluster-of-clusters law automatically).  Returns one
    ``(total_nodes, LoadPoint, scale_stats)`` triple per decade."""
    rate = float(p["scale_blockchain_tps"] if paradigm == "blockchain"
                 else p["scale_dag_tps"])
    points = []
    for total in p["topology_scales"]:
        total = int(total)
        if paradigm == "blockchain":
            deployment = _blockchain_deployment(seed, topology_scale=total)
        else:
            deployment = _dag_deployment(
                seed, processing_tps=p["dag_processing_tps"],
                topology_scale=total)
        deployment.setup(p["accounts"], FUNDING)
        ledger = deployment.ledger
        injector = OpenLoopInjector.from_sim_stream(
            ledger, accounts=p["accounts"], rate_tps=rate,
            duration_s=p["scale_duration_s"])
        injector.start()
        ledger.advance(p["scale_duration_s"] + p["scale_settle_s"])
        stats = ledger.stats()
        point = load_point(rate, stats.confirmation_latencies_s,
                           injector.report.submitted, p["scale_duration_s"],
                           rejected=injector.report.rejected)
        points.append((total, point, deployment.scale_stats()))
        deployment.close()
    return points


def soak(p, seed, pruned):
    """Sustained load with (or without) periodic live pruning.

    Returns the sampled ``(time, ledger bytes)`` series, the run stats,
    and the injector report.
    """
    interval = p["soak_prune_interval_s"]
    ledger = _blockchain_deployment(
        seed,
        limits=MempoolLimits(max_count=400),
        prune_interval_s=interval if pruned else None,
        keep_depth=p["soak_keep_depth"],
    ).ledger
    ledger.setup(p["accounts"], FUNDING)
    deployment = ledger.deployment()
    series = []
    deployment.simulator.schedule_periodic(
        interval,
        lambda: series.append((deployment.simulator.now, ledger.serialized_size())),
        until=p["soak_duration_s"],
    )
    injector = OpenLoopInjector.from_sim_stream(
        ledger, accounts=p["accounts"], rate_tps=p["soak_rate_tps"],
        duration_s=p["soak_duration_s"],
    )
    injector.start()
    ledger.advance(p["soak_duration_s"])
    return series, ledger.stats(), injector.report


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A8"].default_params), **(params or {})}

    bc_points = sweep("blockchain", p["blockchain_loads"], p, seed)
    dag_points = sweep("dag", p["dag_loads"], p, seed)
    bc_knee = detect_saturation_knee(bc_points)
    dag_knee = detect_saturation_knee(dag_points)

    pruned_series, pruned_stats, pruned_report = soak(p, seed, pruned=True)
    control_series, _, _ = soak(p, seed, pruned=False)

    scale_metrics = {}
    for paradigm in ("blockchain", "dag"):
        short = "bc" if paradigm == "blockchain" else "dag"
        for total, point, stats in scale_curve(paradigm, p, seed):
            tag = f"{short}_scale{total}"
            scale_metrics[f"{tag}_achieved_tps"] = point.achieved_tps
            scale_metrics[f"{tag}_p50_s"] = point.p50_s
            scale_metrics[f"{tag}_p99_s"] = point.p99_s
            scale_metrics[f"{tag}_prop_max_s"] = stats["propagation_max_s"]
            scale_metrics[f"{tag}_modeled_nodes"] = stats["modeled_nodes"]

    metrics = {
        "blockchain_knee_tps": float(bc_knee) if bc_knee is not None else -1.0,
        "dag_knee_tps": float(dag_knee) if dag_knee is not None else -1.0,
        "soak_confirmed": float(pruned_stats.entries_confirmed),
        "soak_offered": float(pruned_report.offered),
        "soak_backpressure_fraction": pruned_report.backpressure_fraction,
        "soak_pruned_final_bytes": float(pruned_series[-1][1]),
        "soak_unpruned_final_bytes": float(control_series[-1][1]),
        "soak_growth_ratio": (
            control_series[-1][1] / max(pruned_series[-1][1], 1)
        ),
        "soak_mempool_dropped": pruned_stats.extra.get("mempool.dropped", 0.0),
        "soak_mempool_rejected_full": pruned_stats.extra.get(
            "mempool.rejected_full", 0.0
        ),
    }
    for point in bc_points:
        metrics.update(point.as_metrics("bc"))
    for point in dag_points:
        metrics.update(point.as_metrics("dag"))
    metrics.update(scale_metrics)
    return make_result("A8", p, seed, metrics, started=started)


def test_a8_sustained_service(benchmark):
    """Reduced-scale shape check: both paradigms expose a saturation
    knee, and the pruned soak stays bounded while the control grows."""
    p = {
        "accounts": 10,
        "duration_s": 150.0,
        "settle_s": 90.0,
        "blockchain_loads": (0.25, 2.0),
        "dag_loads": (2.0, 40.0),
        "dag_processing_tps": 10.0,
        "soak_duration_s": 400.0,
        "soak_rate_tps": 2.0,
        "soak_prune_interval_s": 50.0,
        "soak_keep_depth": 6,
        "topology_scales": (100, 10_000),
        "scale_duration_s": 60.0,
        "scale_settle_s": 60.0,
    }
    result = benchmark.pedantic(run, args=(p, 3), rounds=1, iterations=1)
    m = result["metrics"]
    assert m["blockchain_knee_tps"] > 0
    assert m["dag_knee_tps"] > 0
    assert m["soak_confirmed"] > 0
    # Pruned replica stays well under the linearly growing control.
    assert m["soak_growth_ratio"] > 1.5
    # The loaded-latency curve stays live as the modeled population
    # deepens two decades, and the gossip tail stretches with it.
    for short in ("bc", "dag"):
        assert m[f"{short}_scale10000_achieved_tps"] > 0
        assert m[f"{short}_scale10000_prop_max_s"] > \
            m[f"{short}_scale100_prop_max_s"]

    rows = []
    for load in p["blockchain_loads"]:
        tag = f"bc_{load:g}tps"
        rows.append([f"blockchain @ {load:g} TPS",
                     f"{m[tag + '_achieved_tps']:.3f}",
                     f"{m[tag + '_p50_s']:.1f}", f"{m[tag + '_p99_s']:.1f}"])
    for load in p["dag_loads"]:
        tag = f"dag_{load:g}tps"
        rows.append([f"dag @ {load:g} TPS",
                     f"{m[tag + '_achieved_tps']:.3f}",
                     f"{m[tag + '_p50_s']:.1f}", f"{m[tag + '_p99_s']:.1f}"])
    for short, label in (("bc", "blockchain"), ("dag", "dag")):
        for total in p["topology_scales"]:
            tag = f"{short}_scale{total}"
            rows.append([f"{label} @ {total} nodes (scaled)",
                         f"{m[tag + '_achieved_tps']:.3f}",
                         f"{m[tag + '_p50_s']:.1f}",
                         f"{m[tag + '_p99_s']:.1f}"])
    rows.append(["blockchain knee", f"{m['blockchain_knee_tps']:g} TPS", "", ""])
    rows.append(["dag knee", f"{m['dag_knee_tps']:g} TPS", "", ""])
    rows.append(["soak pruned / control bytes",
                 f"{m['soak_pruned_final_bytes']:.0f} / "
                 f"{m['soak_unpruned_final_bytes']:.0f}", "", ""])
    report(
        "A8 sustained-service SLOs (open-loop load + bounded-memory soak)",
        render_table(["run", "achieved TPS", "p50 s", "p99 s"], rows),
    )


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
