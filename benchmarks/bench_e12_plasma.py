"""E12 (§VI-A): Plasma nested chains.

"Only Merkle roots created in the sidechains are periodically broadcasted
to the main network during non-faulty states ... for faulty states,
stakeholders need to display proof of fraud and the Byzantine node gets
penalized."  Measures the on-chain compression and runs the fraud path.
"""

import random
import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.common.units import format_bytes
from repro.crypto.keys import KeyPair
from repro.scaling.plasma import PlasmaChain, PlasmaOperator, PlasmaTx
from repro.metrics.tables import render_table


def run_plasma(users=20, blocks=25, txs_per_block=40, seed=0):
    rng = random.Random(seed)
    user_keys = [KeyPair.generate(rng) for _ in range(users)]
    operator_key = KeyPair.generate(rng)
    chain = PlasmaChain(operator=operator_key.address, bond=1_000_000)
    operator = PlasmaOperator(chain, {u.address: 1_000_000 for u in user_keys})
    nonces = {u.address: 0 for u in user_keys}
    for _ in range(blocks):
        for _ in range(txs_per_block):
            sender = rng.choice(user_keys)
            recipient = rng.choice([u for u in user_keys if u is not sender])
            operator.submit_tx(
                PlasmaTx(sender.address, recipient.address,
                         rng.randint(1, 100), nonces[sender.address])
            )
            nonces[sender.address] += 1
        operator.seal_block()
    return chain, operator, user_keys


def test_e12_commitment_compression(benchmark):
    chain, operator, users = benchmark.pedantic(run_plasma, rounds=2, iterations=1)

    ratio = operator.compression_ratio()
    rows = [
        ["child-chain transactions", operator.txs_processed],
        ["child-chain bytes", format_bytes(operator.child_chain_bytes())],
        ["root-chain commitments", len(chain.commitments)],
        ["root-chain bytes", format_bytes(chain.on_chain_bytes())],
        ["compression (child/root bytes)", f"{ratio:.0f}x"],
        ["value conserved", sum(operator.balances.values()) == 20 * 1_000_000],
    ]
    assert operator.txs_processed == 1000
    assert len(chain.commitments) == 25
    assert ratio > 20
    report("E12a Plasma: roots on chain, transactions off chain",
           render_table(["metric", "value"], rows))


def test_e12_fraud_proof_slashes(benchmark):
    def fraud_scenario():
        rng = random.Random(1)
        users = [KeyPair.generate(rng) for _ in range(3)]
        operator_key = KeyPair.generate(rng)
        chain = PlasmaChain(operator=operator_key.address, bond=500_000)
        operator = PlasmaOperator(chain, {u.address: 1_000 for u in users})
        operator.submit_tx(PlasmaTx(users[0].address, users[1].address, 10, 0))
        invalid = PlasmaTx(users[0].address, users[1].address, 10**9, 7)
        block = operator.seal_block(include_invalid=invalid)
        proof = operator.build_fraud_proof(block.number, invalid, "overspend")
        slashed = chain.challenge(proof)
        operator.exit_all()
        return chain, slashed

    chain, slashed = benchmark(fraud_scenario)
    rows = [
        ["operator bond", 500_000],
        ["slashed on fraud proof", slashed],
        ["chain halted", chain.halted],
        ["funds exited to root chain", sum(chain.exited.values())],
    ]
    assert slashed == 500_000 and chain.halted
    assert sum(chain.exited.values()) == 3_000
    report("E12b Plasma fraud proof: Byzantine operator penalized",
           render_table(["metric", "value"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E12"].default_params), **(params or {})}
    chain, operator, user_keys = run_plasma(
        users=p["users"], blocks=p["blocks"],
        txs_per_block=p["txs_per_block"], seed=seed,
    )
    metrics = {
        "txs_processed": operator.txs_processed,
        "commitments": len(chain.commitments),
        "child_chain_bytes": operator.child_chain_bytes(),
        "root_chain_bytes": chain.on_chain_bytes(),
        "compression_ratio": operator.compression_ratio(),
        "value_conserved": (
            sum(operator.balances.values()) == p["users"] * 1_000_000
        ),
    }
    return make_result("E12", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
