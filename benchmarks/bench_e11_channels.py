"""E11 (§VI-A): payment channels (Lightning / Raiden).

"A prepaid amount is locked in for the lifetime of the channel ...
parties run micro transactions at high volume and speed ... final
balances are recorded on chain": the whole lifetime costs 2 on-chain
transactions regardless of off-chain volume.
"""

import random
import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.crypto.keys import KeyPair
from repro.blockchain.params import BITCOIN
from repro.scaling.channels import ChannelNetwork
from repro.metrics.tables import render_table


def run_channel_hub(clients=8, payments_per_client=500, seed=0):
    """A hub-and-spoke channel network (the common LN shape)."""
    rng = random.Random(seed)
    network = ChannelNetwork()
    hub = KeyPair.generate(rng)
    network.register(hub)
    client_keys = [KeyPair.generate(rng) for _ in range(clients)]
    for client in client_keys:
        network.register(client)
        network.open_channel(client.address, hub.address, 100_000, 100_000)
    for client in client_keys:
        for _ in range(payments_per_client):
            peer = rng.choice([c for c in client_keys if c is not client])
            network.send(client.address, peer.address, rng.randint(1, 20))
    settled = network.close_all()
    return network, settled


def test_e11_channels(benchmark):
    network, settled = benchmark.pedantic(run_channel_hub, rounds=2, iterations=1)

    on_chain = network.total_on_chain_txs()
    off_chain = network.total_off_chain_txs()
    payments = network.payments_routed
    amplification = payments / on_chain

    # 8 channels x (open + close) = 16 on-chain txs, thousands of payments.
    assert on_chain == 16
    assert payments == 4000
    assert amplification > 100

    # Value conservation at settlement: deposits in == balances out.
    assert sum(settled.values()) == 8 * 200_000

    # Time framing: on-chain those 2 txs cost two Bitcoin block waits;
    # off-chain volume is bounded only by message latency.
    onchain_equiv_s = payments / BITCOIN.max_tps()
    rows = [
        ["channels opened", 8],
        ["on-chain transactions (lifetime)", on_chain],
        ["payments routed off-chain", payments],
        ["off-chain hops", off_chain],
        ["payments per on-chain tx", f"{amplification:.0f}"],
        ["on-chain time for same volume", f"{onchain_equiv_s:,.0f} s"],
        ["value conserved at close", "yes"],
    ]
    report("E11 payment channels: 2 on-chain txs buy unbounded volume",
           render_table(["metric", "value"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E11"].default_params), **(params or {})}
    network, settled = run_channel_hub(
        clients=p["clients"], payments_per_client=p["payments_per_client"],
        seed=seed,
    )
    on_chain = network.total_on_chain_txs()
    payments = network.payments_routed
    metrics = {
        "on_chain_txs": on_chain,
        "payments_routed": payments,
        "off_chain_hops": network.total_off_chain_txs(),
        "amplification": payments / on_chain,
        "value_conserved": sum(settled.values()) == p["clients"] * 200_000,
    }
    return make_result("E11", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
