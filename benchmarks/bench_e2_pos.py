"""E2 (§III-A2): Proof of Stake.

Claims: proposer selection ∝ stake; submitting an incorrect block burns
the validator's stake ("the same economic effect as dismantling an
attacker's mining equipment"); PoS consumes far less energy than PoW.
"""

import random
import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.crypto.keys import KeyPair
from repro.common.types import Hash
from repro.blockchain.pos import (
    Checkpoint,
    FinalityGadget,
    FinalityVote,
    POS_ENERGY_PER_BLOCK_KWH,
    POW_ENERGY_PER_BLOCK_KWH,
    ValidatorSet,
    energy_ratio,
)
from repro.metrics.tables import render_table


def build_validators(stakes=(100, 200, 300, 400)):
    keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(len(stakes))]
    validators = ValidatorSet()
    for key, stake in zip(keys, stakes):
        validators.deposit(key.address, stake)
    return validators, keys


def test_e2_selection_proportional_to_stake(benchmark):
    validators, keys = build_validators()

    counts = benchmark(validators.selection_distribution, random.Random(0), 20_000)
    total = sum(counts.values())
    rows = []
    for key, stake in zip(keys, (100, 200, 300, 400)):
        observed = counts.get(key.address, 0) / total
        rows.append([stake, f"{observed:.3f}", f"{stake / 1000:.3f}"])
        assert abs(observed - stake / 1000) < 0.02
    report(
        "E2a PoS lottery: selection vs stake",
        render_table(["stake", "observed share", "expected share"], rows),
    )


def double_vote_scenario():
    validators, keys = build_validators()
    genesis = Checkpoint(Hash.zero(), 0)
    gadget = FinalityGadget(validators, genesis)
    attacker = keys[3].address
    gadget.cast_vote(FinalityVote(attacker, genesis, Checkpoint(Hash(b"\x01" * 32), 1)))
    slashed = gadget.cast_vote(
        FinalityVote(attacker, genesis, Checkpoint(Hash(b"\x02" * 32), 1))
    )
    return validators, attacker, slashed


def test_e2_slashing_burns_stake(benchmark):
    validators, attacker, slashed = benchmark(double_vote_scenario)
    assert slashed == attacker
    assert validators.stake_of(attacker) == 0
    assert validators.burned_stake == 400
    report(
        "E2b slashing: double vote burns the 400-token stake",
        render_table(
            ["metric", "value"],
            [["stake before", 400], ["stake after", 0],
             ["total burned", validators.burned_stake]],
        ),
    )


def test_e2_energy_gap(benchmark):
    ratio = benchmark(energy_ratio)
    rows = [
        ["PoW (Bitcoin-scale network)", f"{POW_ENERGY_PER_BLOCK_KWH:,.0f} kWh/block"],
        ["PoS (validator set)", f"{POS_ENERGY_PER_BLOCK_KWH} kWh/block"],
        ["ratio", f"{ratio:,.0f}x"],
    ]
    assert ratio > 10**6
    report("E2c energy per block: PoW vs PoS", render_table(["system", "energy"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E2"].default_params), **(params or {})}
    stakes = (100, 200, 300, 400)
    validators, keys = build_validators(stakes)
    counts = validators.selection_distribution(random.Random(seed), p["rounds"])
    total = sum(counts.values())
    selection_err = max(
        abs(counts.get(key.address, 0) / total - stake / sum(stakes))
        for key, stake in zip(keys, stakes)
    )
    slashed_set, attacker, slashed = double_vote_scenario()
    metrics = {
        "selection_max_abs_err": selection_err,
        "slashed_is_attacker": slashed == attacker,
        "burned_stake": slashed_set.burned_stake,
        "energy_ratio": energy_ratio(),
    }
    return make_result("E2", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
