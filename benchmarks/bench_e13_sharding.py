"""E13 (§VI-A): sharding.

"Sharding splits the network in K partitions, no longer forcing all
nodes ... to process all incoming transactions."  Throughput grows ~K-fold
for intra-shard traffic; cross-shard communication costs a second entry
and extra latency, eroding the gain.
"""

import random
import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.crypto.keys import KeyPair
from repro.scaling.sharding import ShardedLedger
from repro.metrics.tables import render_table


def run_sharded_workload(shard_count, transfers=2000, seed=0, accounts=200):
    rng = random.Random(seed)
    ledger = ShardedLedger(shard_count=shard_count, per_shard_tps=10.0)
    accounts = [KeyPair.generate(rng).address for _ in range(accounts)]
    for account in accounts:
        ledger.credit(account, 10**6)
    for _ in range(transfers):
        src = rng.choice(accounts)
        dst = rng.choice(accounts)
        if src != dst:
            ledger.transfer(src, dst, 10)
    ledger.settle()
    return ledger


def test_e13_sharding_throughput(benchmark):
    benchmark(run_sharded_workload, 8, 500)

    rows = []
    effective = {}
    for k in (1, 2, 4, 8, 16):
        ledger = run_sharded_workload(k)
        total_txs = ledger.intra_shard_txs + ledger.cross_shard_txs
        cross_fraction = ledger.cross_shard_txs / total_txs
        tps_local = ledger.effective_tps(0.0)
        tps_measured_mix = ledger.effective_tps(cross_fraction)
        effective[k] = (cross_fraction, tps_local, tps_measured_mix)
        entries = ledger.entries_by_shard()
        imbalance = max(entries) / max(min(entries), 1) if k > 1 else 1.0
        rows.append([k, f"{cross_fraction:.2f}", f"{tps_local:.0f}",
                     f"{tps_measured_mix:.0f}", f"{imbalance:.2f}"])

    # ~K-fold scaling for local traffic.
    assert effective[8][1] == 8 * effective[1][1]
    # Random traffic is mostly cross-shard at high K: (K-1)/K.
    assert effective[8][0] > 0.8
    # Cross-shard overhead erodes throughput below the ideal.
    assert effective[8][2] < effective[8][1]
    # But sharding still wins overall: 8 shards with full cross traffic
    # beat 1 shard.
    assert effective[8][2] > 2 * effective[1][1]
    # Value conservation across shards held (checked inside the run via
    # settle + supply in the unit tests; spot-check here too).
    ledger = run_sharded_workload(4, transfers=300)
    assert ledger.total_supply() == 200 * 10**6

    report(
        "E13 sharding: throughput vs K and cross-shard overhead",
        render_table(
            ["K shards", "cross-shard frac", "ideal TPS", "effective TPS",
             "load imbalance"],
            rows,
        ),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E13"].default_params), **(params or {})}
    ledger = run_sharded_workload(
        p["shard_count"], transfers=p["transfers"], seed=seed,
        accounts=p["accounts"],
    )
    total_txs = ledger.intra_shard_txs + ledger.cross_shard_txs
    cross_fraction = ledger.cross_shard_txs / max(total_txs, 1)
    metrics = {
        "cross_shard_fraction": cross_fraction,
        "ideal_tps": ledger.effective_tps(0.0),
        "effective_tps": ledger.effective_tps(cross_fraction),
        "supply_conserved": ledger.total_supply() == p["accounts"] * 10**6,
    }
    return make_result("E13", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
