"""Ablation A7: gossip under injected faults — partition, heal, churn.

The paper's consistency claims (Section IV's disagreement windows,
Section VI-B's real-world limitations) are statements about *degraded*
propagation.  This bench drives the gossip fabric through a timed
partition with automatic heal plus crash/restart churn and asserts the
two recovery properties the fault-injection layer exists to provide:

* delivery recovers to 100% after heal — every broadcast reaches every
  node, including messages first flooded *inside* the partition window;
* the structured trace accounts for every attempt — ``scheduled ==
  delivered + dropped`` with nothing left in flight.
"""

import time

import pytest

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.faults import ChurnParams, FaultInjector
from repro.metrics.stats import windowed_rate
from repro.metrics.tables import render_table
from repro.net.link import FAST_LINK
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.topology import small_world_topology
from repro.sim.simulator import Simulator
from repro.trace import DELIVER
from repro.workloads.generators import gossip_workload

pytestmark = pytest.mark.faults

NODES = 12
DURATION = 120.0
PARTITION_AT = 30.0
HEAL_AFTER = 30.0


def run_fault_scenario(seed=7, nodes_n=NODES, duration=DURATION,
                       partition_at=PARTITION_AT, heal_after=HEAL_AFTER,
                       rate_tps=0.5, churn_nodes=2):
    sim = Simulator(seed=seed)
    net = Network(sim)
    nodes = small_world_topology(net, nodes_n, NetworkNode,
                                 link_params=FAST_LINK, seed=seed)
    injector = FaultInjector(net)
    half = [n.node_id for n in nodes[: nodes_n // 2]]
    rest = [n.node_id for n in nodes[nodes_n // 2:]]
    injector.partition_at(partition_at, [half, rest], heal_after_s=heal_after)
    injector.churn(
        [n.node_id for n in nodes[:churn_nodes]],
        ChurnParams(mtbf_s=duration / 4, downtime_s=10.0,
                    until_s=duration * 0.6),
    )
    sent = gossip_workload(sim, nodes, rate_tps=rate_tps, duration_s=duration)
    sim.run(until=duration)
    sim.run()  # drain retransmissions scheduled past the horizon
    return net, injector, nodes, sent


def test_a7_fault_tolerance(benchmark):
    net, injector, nodes, sent = benchmark.pedantic(
        run_fault_scenario, rounds=1, iterations=1
    )
    tracer = net.tracer

    # Recovery: every broadcast reached every non-origin node exactly
    # once, despite 60 s of partition and repeated node crashes.
    expected = len(sent) * (len(nodes) - 1)
    received = sum(n.messages_received for n in nodes)
    assert len(sent) > 20
    assert received == expected

    # Accounting: the trace resolves every scheduled attempt exactly
    # once, so drops + deliveries == scheduled transmissions.
    assert tracer.scheduled == tracer.delivered + tracer.dropped
    assert tracer.in_flight == 0
    assert net.pending_retries() == 0

    # The faults actually bit: cross-partition traffic was dropped and
    # the retransmit path did real work to recover it.
    assert tracer.drop_reasons.get("partition", 0) > 0
    assert tracer.retransmits > 0
    assert injector.crashes_injected > 0
    assert injector.crashes_injected == injector.restarts_injected

    delivery_times = [e.time for e in tracer.events(DELIVER)]
    rows = [
        [f"{edge - 15:.0f}-{edge:.0f}", f"{rate:.2f}"]
        for edge, rate in windowed_rate(delivery_times, 15.0)
    ]
    report(
        "A7 fault tolerance: delivery rate through a "
        f"{HEAL_AFTER:.0f} s partition at t={PARTITION_AT:.0f} s "
        f"({received}/{expected} delivered; {tracer.summary()})",
        render_table(["window (s)", "deliveries/s"], rows),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A7"].default_params), **(params or {})}
    net, injector, nodes, sent = run_fault_scenario(
        seed=seed, nodes_n=p["nodes"], duration=p["duration_s"],
        partition_at=p["partition_at_s"], heal_after=p["heal_after_s"],
        rate_tps=p["rate_tps"], churn_nodes=p["churn_nodes"],
    )
    tracer = net.tracer
    expected = len(sent) * (len(nodes) - 1)
    received = sum(n.messages_received for n in nodes)
    metrics = {
        "broadcasts": len(sent),
        "delivery_fraction": received / max(expected, 1),
        "partition_drops": tracer.drop_reasons.get("partition", 0),
        "retransmits": tracer.retransmits,
        "crashes_injected": injector.crashes_injected,
        "accounting_ok": (
            tracer.scheduled == tracer.delivered + tracer.dropped
            and tracer.in_flight == 0
        ),
    }
    trace = None
    if p["capture_trace"]:
        trace = [e.to_dict() for e in tracer.events()]
    return make_result("A7", p, seed, metrics, started=started, trace=trace)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
