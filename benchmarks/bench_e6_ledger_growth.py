"""E6 (§V): ledger sizes grow monotonically; Bitcoin ≫ Ethereum ≫ Nano.

Measures the per-entry byte footprint of each ledger from real serialized
structures, projects growth at the systems' realized 2018 entry rates,
and checks the paper's snapshot ordering (145.95 / 39.62 / 3.42 GB)
emerges from protocol behaviour.
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.common.units import GB, YEAR, format_bytes
from repro.crypto.keys import KeyPair
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import assemble_block, build_genesis_block
from repro.blockchain.chain import ChainStore
from repro.blockchain.transaction import build_transaction, make_coinbase
from repro.dag.blocks import make_open, make_receive, make_send
from repro.dag.lattice import Lattice
from repro.dag.params import NanoParams
from repro.storage.growth import (
    GrowthModel,
    LEDGER_SNAPSHOT_2018,
    ordering_matches_snapshot,
)
from repro.storage.sizing import blockchain_size_report, dag_size_report
from repro.metrics.tables import render_table


def measure_bitcoin_like_footprint(txs=200):
    """Bytes per payment on a UTXO chain (incl. header amortization)."""
    alice = KeyPair.from_seed(b"\x01" * 32)
    bob = KeyPair.from_seed(b"\x02" * 32)
    genesis = build_genesis_block(alice.address, 10**12)
    store = ChainStore(genesis)
    parent = genesis
    spendable = [(genesis.transactions[0].txid, 0, 10**12)]
    batch = []
    height = 0
    for i in range(txs):
        tx = build_transaction(alice, spendable, bob.address, 1000)
        change_index = len(tx.outputs) - 1
        spendable = [(tx.txid, change_index, tx.outputs[change_index].amount)]
        batch.append(tx)
        if len(batch) == 20:
            height += 1
            block = assemble_block(
                parent.header,
                [make_coinbase(alice.address, 50, nonce=height)] + batch,
                float(height), MAX_TARGET,
            )
            store.add_block(block)
            parent = block
            batch = []
    report_obj = blockchain_size_report(store, name="bitcoin-like")
    return report_obj.total_bytes / txs, store


def measure_nano_like_footprint(txs=200):
    """Bytes per payment on the block-lattice (send + receive pair)."""
    lattice = Lattice(NanoParams(work_difficulty=1))
    alice = KeyPair.from_seed(b"\x03" * 32)
    bob = KeyPair.from_seed(b"\x04" * 32)
    lattice.create_genesis(alice, 10**12)
    first = make_send(alice, lattice.chain(alice.address).head, bob.address,
                      1000, work_difficulty=1)
    lattice.process(first)
    lattice.process(make_open(bob, first.block_hash, 1000,
                              representative=alice.address, work_difficulty=1))
    for _ in range(txs - 1):
        send = make_send(alice, lattice.chain(alice.address).head, bob.address,
                         1000, work_difficulty=1)
        lattice.process(send)
        lattice.process(make_receive(bob, lattice.chain(bob.address).head,
                                     send.block_hash, 1000, work_difficulty=1))
    return dag_size_report(lattice).total_bytes / txs, lattice


def test_e6_ledger_growth(benchmark):
    bitcoin_per_tx, store = benchmark(measure_bitcoin_like_footprint, 100)
    bitcoin_per_tx, store = measure_bitcoin_like_footprint(400)
    nano_per_tx, lattice = measure_nano_like_footprint(400)

    # 2018 realized entry rates: Bitcoin ~3.5 TPS sustained is generous —
    # actual daily averages were ~2.5 TPS; Ethereum ~7 TPS; Nano far less
    # (~0.2 TPS average over its short history).
    models = {
        "bitcoin": GrowthModel("bitcoin", 2.5, bitcoin_per_tx),
        "ethereum": GrowthModel("ethereum", 7.0, bitcoin_per_tx * 0.35),
        "nano": GrowthModel("nano", 0.2, nano_per_tx),
    }
    horizon = 9 * YEAR  # Bitcoin's age at the paper's snapshot
    projected = {
        "bitcoin": models["bitcoin"].size_at(horizon),
        "ethereum": models["ethereum"].size_at(2.5 * YEAR),
        "nano": models["nano"].size_at(2.5 * YEAR),
    }

    rows = []
    for name in ("bitcoin", "ethereum", "nano"):
        snap = LEDGER_SNAPSHOT_2018[name]
        rows.append([
            name,
            format_bytes(models[name].bytes_per_entry),
            format_bytes(models[name].growth_per_year()),
            format_bytes(projected[name]),
            format_bytes(snap.size_bytes),
        ])

    # The paper's shape: strict ordering, with Bitcoin roughly an order
    # of magnitude above Nano.
    assert ordering_matches_snapshot(projected)
    assert projected["bitcoin"] / projected["nano"] > 10

    # Monotone growth (append-only ledgers).
    series = models["bitcoin"].series(horizon, points=10)
    assert all(a[1] <= b[1] for a, b in zip(series, series[1:]))

    report(
        "E6 ledger growth and the 2018 snapshot ordering",
        render_table(
            ["ledger", "bytes/tx", "growth/yr", "projected", "paper snapshot"],
            rows,
        ),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E6"].default_params), **(params or {})}
    bitcoin_per_tx, _store = measure_bitcoin_like_footprint(p["txs"])
    nano_per_tx, _lattice = measure_nano_like_footprint(p["txs"])
    models = {
        "bitcoin": GrowthModel("bitcoin", 2.5, bitcoin_per_tx),
        "ethereum": GrowthModel("ethereum", 7.0, bitcoin_per_tx * 0.35),
        "nano": GrowthModel("nano", 0.2, nano_per_tx),
    }
    projected = {
        "bitcoin": models["bitcoin"].size_at(9 * YEAR),
        "ethereum": models["ethereum"].size_at(2.5 * YEAR),
        "nano": models["nano"].size_at(2.5 * YEAR),
    }
    metrics = {
        "bitcoin_bytes_per_tx": bitcoin_per_tx,
        "nano_bytes_per_tx": nano_per_tx,
        "projected_bitcoin_gb": projected["bitcoin"] / GB,
        "projected_ethereum_gb": projected["ethereum"] / GB,
        "projected_nano_gb": projected["nano"] / GB,
        "ordering_ok": ordering_matches_snapshot(projected),
    }
    return make_result("E6", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
