"""Extension A6: three DAG ordering disciplines side by side.

Footnote 1 of the paper names IOTA and Byteball as the other DAG
approaches.  With all three now implemented, this bench contrasts how
each decides "which of two conflicting transactions stands":

* block-lattice (Nano)   — weighted representative vote;
* tangle (IOTA)          — cumulative-weight tip selection;
* witnessed DAG (Byteball) — total order by main-chain index.

Byteball's distinguishing property — a deterministic **total order** over
the whole DAG, no election needed — is asserted directly.
"""

import random
import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.crypto.keys import KeyPair
from repro.dag.byteball import ByteballDag, make_unit
from repro.metrics.tables import render_table


def build_witnessed_dag(units=40, witnesses=5, seed=0):
    rng = random.Random(seed)
    witness_keys = [KeyPair.from_seed(bytes([i + 1, 99] + [0] * 30))
                    for i in range(witnesses)]
    founder = KeyPair.from_seed(b"\x66" * 32)
    dag = ByteballDag([w.address for w in witness_keys], stability_depth=3)
    dag.create_genesis(founder)
    for i in range(units):
        author = witness_keys[i % witnesses]
        tips = dag.tips()
        parents = [tips[0]] if len(tips) == 1 else rng.sample(tips, 2)
        dag.attach(make_unit(author, parents, f"u{i}".encode(), 1.0 + i))
    return dag, witness_keys, founder


def test_a6_byteball_total_order(benchmark):
    dag, witness_keys, founder = benchmark(build_witnessed_dag)

    order = dag.total_order()
    chain = dag.main_chain()
    stable_mci = dag.last_stable_mci()
    ordered_fraction = len(order) / len(dag)

    # The defining property: (almost) every unit has a deterministic
    # position; only fresh unreferenced tips await ordering.
    assert ordered_fraction > 0.9
    # Order is genesis-first and duplicates-free.
    assert order[0] == dag.genesis_hash
    assert len(order) == len(set(order))
    # Stability advanced: deep units are irreversible.
    assert stable_mci > 0
    assert dag.is_stable(dag.genesis_hash)

    # Conflict resolution without any vote: earlier order wins, and the
    # answer is a pure function of the DAG (any replica agrees).
    user = KeyPair.from_seed(b"\x67" * 32)
    early = make_unit(user, [dag.genesis_hash], b"spend-A", 0.2)
    dag.attach(early)
    merge = make_unit(
        witness_keys[0], [early.unit_hash, dag.main_chain()[-1]], b"m", 99.0
    )
    dag.attach(merge)
    late = make_unit(user, [dag.genesis_hash], b"spend-B", 0.3)
    dag.attach(late)
    merge2 = make_unit(
        witness_keys[1], [late.unit_hash, dag.main_chain()[-1]], b"m2", 100.0
    )
    dag.attach(merge2)
    winner = dag.resolve_conflict(early.unit_hash, late.unit_hash)
    assert winner == early.unit_hash

    rows = [
        ["units", len(dag)],
        ["main-chain length", len(chain)],
        ["units with a total-order position", f"{ordered_fraction:.0%}"],
        ["stable MC index", stable_mci],
        ["conflict resolution", "earlier MCI wins (deterministic)"],
    ]
    comparison = [
        ["nano (block-lattice)", "weighted representative vote",
         "needs online voting weight"],
        ["iota (tangle)", "cumulative-weight tip selection",
         "probabilistic, no total order"],
        ["byteball (witnessed DAG)", "main-chain index total order",
         "deterministic, needs witness liveness"],
    ]
    report(
        "A6 Byteball-style witnessed DAG (footnote 1, second system)",
        render_table(["metric", "value"], rows)
        + "\n\n"
        + render_table(["system", "conflict discipline", "trade-off"], comparison),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A6"].default_params), **(params or {})}
    dag, _witness_keys, _founder = build_witnessed_dag(
        units=p["units"], witnesses=p["witnesses"], seed=seed
    )
    order = dag.total_order()
    metrics = {
        "units": len(dag),
        "main_chain_length": len(dag.main_chain()),
        "ordered_fraction": len(order) / len(dag),
        "stable_mci": dag.last_stable_mci(),
        "genesis_stable": dag.is_stable(dag.genesis_hash),
    }
    return make_result("A6", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
