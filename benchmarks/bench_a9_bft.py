"""Extension A9: quorum-certificate BFT as the third consensus regime.

The paper compares Nakamoto consensus (probabilistic finality, §IV-A)
with open representative voting (§III-B).  Permissioned deployments use
a third discipline the comparison framework now models: HotStuff-style
quorum certificates — a rotating leader batches payments into blocks, a
prepare/commit vote round forms certificates of ``n - f`` signatures,
and a committed block is *final* (no depth rule, no election).

Three phases, all built through ``build_deployment``:

* **throughput/latency** — payments commit with deterministic finality
  and sub-view latency on every replica;
* **leader crash** — the view-change timeout routes around a crashed
  leader and commits resume (liveness after timeout);
* **equivocation at f < n/3** — a Byzantine leader flooding conflicting
  sibling proposals is detected by honest replicas and never splits the
  committed prefix (safety margin of the quorum rule).
"""

import time

import pytest

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.core.deploy import build_deployment
from repro.faults import ByzantineSpec
from repro.metrics.tables import render_table
from repro.workloads.generators import PaymentEvent

pytestmark = pytest.mark.faults

ACCOUNTS = 4
FUNDING = 1_000_000


def _deployment(seed, node_count=4, byzantine=None, **knobs):
    deployment = build_deployment(
        "bft", node_count=node_count, seed=seed, faults=byzantine, **knobs
    )
    deployment.setup(ACCOUNTS, FUNDING)
    return deployment


def _feed_payments(ledger, count, gap_s=2.0, amount=7):
    entries = []
    for i in range(count):
        entry = ledger.submit(PaymentEvent(
            time_s=ledger.now(), sender_index=i % ACCOUNTS,
            recipient_index=(i + 1) % ACCOUNTS, amount=amount + i,
        ))
        if entry is not None:
            entries.append(entry)
        ledger.advance(gap_s)
    return entries


def throughput_phase(seed=11, payments=10):
    """Honest run: every payment commits, finality is deterministic."""
    deployment = _deployment(seed)
    ledger = deployment.ledger
    entries = _feed_payments(ledger, payments)
    ledger.advance(30.0)
    stats = ledger.stats()
    confirmed = sum(1 for e in entries if ledger.is_confirmed(e))
    return deployment, stats, len(entries), confirmed


def leader_crash_phase(seed=12, payments=8, downtime_s=12.0):
    """Crash a replica mid-run: the view timeout must rotate leadership
    past it and commits must resume once traffic continues."""
    deployment = _deployment(seed, view_timeout_s=3.0)
    ledger = deployment.ledger
    injector = deployment.fault_injector()
    _feed_payments(ledger, payments // 2)
    ledger.advance(5.0)

    victim = deployment.nodes[1]
    commits_before = victim.stats.commits
    injector.crash(victim.node_id)
    # Three view timeouts pass while the victim is down — whenever the
    # rotation lands on it, the other replicas must time out and move on.
    ledger.advance(downtime_s)
    injector.restart(victim.node_id)

    _feed_payments(ledger, payments - payments // 2)
    ledger.advance(30.0)
    view_changes = sum(n.stats.view_changes for n in deployment.nodes)
    timeouts = sum(n.stats.timeouts for n in deployment.nodes)
    commits_after = max(n.stats.commits for n in deployment.nodes)
    return deployment, view_changes, timeouts, commits_before, commits_after


def equivocation_phase(seed=13, payments=10):
    """One equivocating replica out of four (f < n/3): detected, never
    committed, audit green."""
    deployment = _deployment(
        seed, byzantine=ByzantineSpec(count=1, behavior="equivocate"),
    )
    ledger = deployment.ledger
    _feed_payments(ledger, payments)
    ledger.advance(40.0)
    detected = sum(n.stats.equivocations_detected for n in deployment.nodes)
    sent = sum(n.stats.equivocations_sent for n in deployment.nodes)
    audit = ledger.audit()
    heights = [len(n.committed) for n in deployment.nodes]
    return deployment, sent, detected, audit, heights


def test_a9_bft_consensus(benchmark):
    deployment, stats, submitted, confirmed = benchmark(throughput_phase)

    # Deterministic finality: everything submitted commits, and every
    # replica reports the identical committed height.
    assert submitted > 0
    assert confirmed == submitted
    assert stats.entries_confirmed == submitted
    counters = deployment.layer_counters()
    assert counters.get("consensus.commits", 0) > 0
    assert counters.get("consensus.qcs_formed", 0) > 0
    mean_latency = (sum(stats.confirmation_latencies_s)
                    / len(stats.confirmation_latencies_s))

    (_crash_dep, view_changes, timeouts,
     commits_before, commits_after) = leader_crash_phase()
    assert timeouts > 0, "crashing a leader must trip the view timeout"
    assert view_changes > 0, "the roster must rotate past the dead leader"
    assert commits_after > commits_before, "commits must resume after heal"

    _byz_dep, sent, detected, audit, heights = equivocation_phase()
    assert sent > 0, "the marked replica must actually equivocate"
    assert detected > 0, "honest replicas must observe the conflict"
    assert audit is not None and audit.ok, audit
    assert len(set(heights)) == 1, "committed prefixes must agree"

    rows = [
        ["payments committed", stats.entries_confirmed],
        ["mean commit latency", f"{mean_latency:.2f} s"],
        ["QCs formed", int(counters["consensus.qcs_formed"])],
        ["view changes around crash", view_changes],
        ["equivocations sent / detected", f"{sent} / {detected}"],
        ["replica committed heights", heights],
    ]
    report(
        "A9 HotStuff-style BFT engine (extension: third consensus regime)",
        render_table(["metric", "value"], rows),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A9"].default_params), **(params or {})}

    deployment, stats, submitted, confirmed = throughput_phase(
        seed=seed + 11, payments=p["payments"])
    latencies = stats.confirmation_latencies_s
    (_dep, view_changes, timeouts,
     commits_before, commits_after) = leader_crash_phase(
        seed=seed + 12, payments=p["payments"],
        downtime_s=p["crash_downtime_s"])
    _byz, sent, detected, audit, heights = equivocation_phase(
        seed=seed + 13, payments=p["payments"])

    metrics = {
        "submitted": float(submitted),
        "confirmed": float(confirmed),
        "mean_latency_s": (sum(latencies) / len(latencies)) if latencies
        else -1.0,
        "qcs_formed": deployment.layer_counters().get(
            "consensus.qcs_formed", 0.0),
        "view_changes": float(view_changes),
        "timeouts": float(timeouts),
        "commits_resumed": float(commits_after - commits_before),
        "equivocations_sent": float(sent),
        "equivocations_detected": float(detected),
        "containment_audit_ok": bool(audit is not None and audit.ok),
        "committed_height_spread": float(max(heights) - min(heights)),
    }
    return make_result("A9", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
