"""E7 (§V-A): Bitcoin pruning and Ethereum fast sync.

Reproduces both remedies on real serialized ledgers: pruning discards
old block bodies (disk saved, history-serving lost); fast sync downloads
headers + receipts + one state snapshot instead of replaying history,
leaving "a database pruned of the state deltas".
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.common.units import format_bytes
from repro.crypto.keys import KeyPair
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import assemble_block, build_genesis_block
from repro.blockchain.chain import ChainStore
from repro.blockchain.state import AccountState
from repro.blockchain.transaction import make_coinbase, sign_account_transaction
from repro.storage.fast_sync import fast_sync, prune_state_deltas
from repro.storage.pruning import prune_chain
from repro.metrics.tables import render_table


def build_utxo_chain(blocks=300, txs_per_block=8):
    key = KeyPair.from_seed(b"\x05" * 32)
    store = ChainStore(build_genesis_block(key.address, 10**9))
    parent = store.genesis
    for height in range(1, blocks + 1):
        body = [make_coinbase(key.address, 50, nonce=height * 100 + i)
                for i in range(txs_per_block)]
        block = assemble_block(parent.header, body, float(height), MAX_TARGET)
        store.add_block(block)
        parent = block
    return store


def build_account_chain(blocks=150):
    alice = KeyPair.from_seed(b"\x06" * 32)
    bob = KeyPair.from_seed(b"\x07" * 32)
    miner = KeyPair.from_seed(b"\x08" * 32)
    store = ChainStore(build_genesis_block(miner.address, 1))
    state = AccountState()
    state.credit(alice.address, 10**15)
    receipts_by_block = [[]]
    parent = store.genesis
    for height in range(1, blocks + 1):
        tx = sign_account_transaction(alice, height - 1, bob.address, 100, gas_price=1)
        receipts, _ = state.apply_block_transactions([tx], miner.address, 0)
        block = assemble_block(parent.header, [tx], float(height), MAX_TARGET,
                               state_root=state.root_hash)
        store.add_block(block)
        receipts_by_block.append(receipts)
        parent = block
    return store, state, receipts_by_block


def test_e7_bitcoin_pruning(benchmark):
    store = build_utxo_chain()
    result = benchmark.pedantic(
        lambda: prune_chain(build_utxo_chain(), keep_depth=50), rounds=3, iterations=1
    )
    rows = [
        ["size before", format_bytes(result.size_before)],
        ["size after", format_bytes(result.size_after)],
        ["freed", f"{format_bytes(result.bytes_freed)} ({result.fraction_freed:.0%})"],
        ["blocks pruned / kept", f"{result.blocks_pruned} / {result.keep_depth}"],
    ]
    # Most of the disk is old bodies; headers and the recent window stay.
    assert result.fraction_freed > 0.6
    assert result.blocks_pruned == 300 - 50 + 1
    report("E7a Bitcoin block-file pruning", render_table(["metric", "value"], rows))


def test_e7_ethereum_fast_sync(benchmark):
    store, state, receipts = build_account_chain()

    result = benchmark(fast_sync, store, state, receipts, 64)
    freed = prune_state_deltas(state)
    rows = [
        ["full sync download", format_bytes(result.full_sync_bytes)],
        ["full sync txs replayed", result.full_sync_txs_replayed],
        ["fast sync download", format_bytes(result.fast_sync_bytes)],
        ["fast sync txs replayed", result.fast_sync_txs_replayed],
        ["state snapshot at pivot", format_bytes(result.state_snapshot_bytes)],
        ["state deltas pruned", format_bytes(freed)],
    ]
    # Fast sync replays only the post-pivot window and ships a snapshot
    # far smaller than the accumulated deltas.
    assert result.fast_sync_txs_replayed == 64
    assert result.replay_saved > 80
    assert freed > result.state_snapshot_bytes  # deltas dominated the store
    report("E7b Ethereum fast sync at pivot head-64", render_table(["metric", "value"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E7"].default_params), **(params or {})}
    store = build_utxo_chain(blocks=p["blocks"], txs_per_block=p["txs_per_block"])
    pruned = prune_chain(store, keep_depth=p["keep_depth"])
    acct_store, state, receipts = build_account_chain()
    sync = fast_sync(acct_store, state, receipts, p["pivot_window"])
    freed = prune_state_deltas(state)
    metrics = {
        "prune_fraction_freed": pruned.fraction_freed,
        "blocks_pruned": pruned.blocks_pruned,
        "fastsync_replay_saved": sync.replay_saved,
        "fastsync_download_ratio": sync.fast_sync_bytes / sync.full_sync_bytes,
        "state_deltas_freed_bytes": freed,
    }
    return make_result("E7", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
