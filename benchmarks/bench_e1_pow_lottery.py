"""E1 (§III-A1): the Proof-of-Work lottery.

Two claims: (1) leader-election win rate is proportional to hash power;
(2) difficulty retargeting keeps the block interval fixed as network
hash power grows — so adding miners does not add throughput (§VI-A).
"""

import random
import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.crypto.pow import MAX_TARGET, difficulty_to_target, solve_pow
from repro.blockchain.difficulty import bitcoin_retarget
from repro.blockchain.miner import mining_race
from repro.metrics.tables import render_table


def run_lottery(rounds=20_000, seed=0):
    shares = [0.4, 0.3, 0.2, 0.1]
    wins = mining_race(shares, rounds, random.Random(seed))
    return shares, wins, rounds


def test_e1_win_rate_proportional_to_hashpower(benchmark):
    shares, wins, rounds = benchmark(run_lottery, rounds=5_000)
    shares, wins, rounds = run_lottery(rounds=40_000)

    rows = []
    for share, win_count in zip(shares, wins):
        observed = win_count / rounds
        rows.append([f"{share:.0%}", win_count, f"{observed:.3f}"])
        assert abs(observed - share) < 0.02  # lottery ∝ hash power
    report(
        "E1a PoW lottery: wins vs hash power",
        render_table(["hash share", "blocks won", "win rate"], rows),
    )


def retarget_convergence(growth_factor=10.0, epochs=40, growth_epoch=10):
    target = MAX_TARGET // 600_000  # difficulty 600k: 600s at 1k h/s
    hashrate = 1_000.0
    intervals = []
    for epoch in range(epochs):
        if epoch == growth_epoch:
            hashrate *= growth_factor  # the network grows
        difficulty = MAX_TARGET / target
        interval = difficulty / hashrate
        intervals.append(interval)
        target = bitcoin_retarget(target, interval * 2016, 600.0 * 2016)
    return intervals


def test_e1_difficulty_keeps_interval_fixed(benchmark):
    intervals = benchmark(retarget_convergence)
    rows = [
        ["steady state before growth (epoch 9)", f"{intervals[9]:.1f}"],
        ["right after 10x growth (epoch 10)", f"{intervals[10]:.1f}"],
        ["after retargeting (final)", f"{intervals[-1]:.1f}"],
    ]
    # 10x hash power briefly gives ~60s blocks, then difficulty restores
    # the 600s interval — "block generation time converges to a fixed value".
    assert abs(intervals[9] - 600.0) < 30
    assert intervals[10] < 100
    assert abs(intervals[-1] - 600.0) < 30
    report(
        "E1b difficulty retargeting under 10x hashrate growth",
        render_table(["phase", "block interval (s)"], rows),
    )


def test_e1_real_puzzle_asymmetry(benchmark):
    """Solving is expensive, verification is one hash — the asymmetry
    that makes the lottery checkable by everyone."""
    target = difficulty_to_target(512)

    solution = benchmark(solve_pow, b"block-header", target)
    assert solution is not None
    from repro.crypto.pow import check_pow

    assert check_pow(b"block-header", solution.nonce, target)
    report(
        "E1c real partial hash inversion",
        f"difficulty 512: solved in {solution.attempts} attempts; "
        "verification = 1 hash",
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E1"].default_params), **(params or {})}
    shares, wins, rounds = run_lottery(rounds=p["rounds"], seed=seed)
    win_rate_err = max(
        abs(win_count / rounds - share)
        for share, win_count in zip(shares, wins)
    )
    intervals = retarget_convergence(growth_factor=p["growth_factor"])
    solution = solve_pow(f"block-header-{seed}".encode(),
                         difficulty_to_target(p["pow_difficulty"]))
    metrics = {
        "win_rate_max_abs_err": win_rate_err,
        "interval_steady_s": intervals[9],
        "interval_during_shock_s": intervals[10],
        "interval_after_retarget_s": intervals[-1],
        "pow_attempts": solution.attempts,
    }
    return make_result("E1", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
