"""E9 (§VI-A): blockchain protocol throughput ceilings.

Regenerates the paper's headline numbers from protocol parameters AND
measures them live on the simulator: Bitcoin 3-7 TPS (10-min 1 MB
blocks), Ethereum 7-15 TPS (15 s gas-limited blocks), PoS ~4 s blocks,
all dwarfed by Visa's 56,000 TPS.
"""

import time
from dataclasses import replace

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result

from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK
from repro.net.network import Network
from repro.trace import NullTracer
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.blockchain.transaction import build_transaction
from repro.scaling.throughput import VISA_TPS, protocol_tps_table
from repro.metrics.tables import render_table


def test_e9_protocol_ceilings(benchmark):
    table = benchmark(protocol_tps_table)

    heavy = BITCOIN.max_tps(avg_tx_size_bytes=550)
    light = BITCOIN.max_tps(avg_tx_size_bytes=230)
    rows = [
        ["bitcoin (heavy txs)", f"{heavy:.1f}"],
        ["bitcoin (light txs)", f"{light:.1f}"],
        ["segwit2x (2 MB)", f"{table['segwit2x']:.1f}"],
        ["ethereum (8M gas / 15 s)", f"{table['ethereum']:.1f}"],
        ["ethereum PoS (4 s)", f"{table['ethereum-pos']:.1f}"],
        ["visa", f"{table['visa']:,.0f}"],
    ]
    # The paper's ranges and ordering.
    assert 3 <= heavy <= 7 <= light <= 8
    assert 7 <= table["ethereum"] <= 30
    assert table["segwit2x"] == 2 * table["bitcoin"]
    assert table["ethereum-pos"] > table["ethereum"]
    assert all(v < VISA_TPS / 100 for k, v in table.items() if k != "visa")
    report("E9a protocol TPS ceilings (Section VI-A)", render_table(["system", "TPS"], rows))


def saturate(offered_tps=20.0, duration=1200.0, seed=1):
    # A miniature Bitcoin: 30 s blocks, 2 KB caps ⇒ ~0.45 TPS ceiling.
    params = replace(
        BITCOIN, target_block_interval_s=30.0, max_block_size_bytes=2_000,
        confirmation_depth=2,
    )
    alice = KeyPair.from_seed(b"\x0a" * 32)
    bob = KeyPair.from_seed(b"\x0b" * 32)
    genesis = build_genesis_with_allocations(
        {alice.address: 10**12, bob.address: 10**12}
    )
    sim = Simulator(seed=seed)
    # Nothing below reads the trace, so take the untraced fast path.
    net = Network(sim, tracer=NullTracer())
    nodes = complete_topology(
        net, 3, lambda nid: BlockchainNode(nid, params, genesis), FAST_LINK
    )
    for i, node in enumerate(nodes):
        node.start_pow_mining(1 / 3, KeyPair.from_seed(bytes([60 + i]) * 32).address)
    # Offered load: alice sprays micro-payments (chained via change).
    spendable = [(genesis.transactions[0].txid, 0, 10**12)]
    interval = 1.0 / offered_tps
    state = {"spendable": spendable, "submitted": 0}

    def submit():
        tx = build_transaction(alice, state["spendable"], bob.address, 10, fee=1)
        change_index = len(tx.outputs) - 1
        state["spendable"] = [
            (tx.txid, change_index, tx.outputs[change_index].amount)
        ]
        nodes[0].submit_transaction(tx)
        state["submitted"] += 1

    sim.schedule_periodic(interval, submit, until=duration * 0.8)
    sim.run(until=duration)
    observer = nodes[0]
    mined_txs = sum(
        len(b.transactions) - 1 for b in observer.chain.main_chain()
    )
    mined_tps = mined_txs / duration
    ceiling = params.max_tps(avg_tx_size_bytes=250)
    backlog = len(observer.mempool)
    return mined_tps, ceiling, backlog, state["submitted"]


def test_e9_measured_saturation(benchmark):
    """Drive a small-block chain far past its capacity: confirmed TPS
    pins at the block-size/interval ceiling while the mempool backlog
    grows — the Section VI pending-transaction picture."""
    mined_tps, ceiling, backlog, submitted = benchmark.pedantic(
        saturate, rounds=1, iterations=1
    )
    rows = [
        ["offered load", "20.0 TPS"],
        ["protocol ceiling", f"{ceiling:.2f} TPS"],
        ["mined throughput", f"{mined_tps:.2f} TPS"],
        ["mempool backlog at end", backlog],
    ]
    # Throughput pinned at the ceiling (within Poisson noise), huge backlog.
    assert mined_tps < ceiling * 1.6
    assert backlog > submitted * 0.8
    report("E9b measured saturation of a capped chain", render_table(["metric", "value"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E9"].default_params), **(params or {})}
    table = protocol_tps_table()
    mined_tps, ceiling, backlog, submitted = saturate(
        offered_tps=p["offered_tps"], duration=p["duration_s"], seed=seed
    )
    metrics = {
        "bitcoin_ceiling_tps": table["bitcoin"],
        "ethereum_ceiling_tps": table["ethereum"],
        "visa_tps": table["visa"],
        "mined_tps": mined_tps,
        "sim_ceiling_tps": ceiling,
        "mempool_backlog": backlog,
        "submitted": submitted,
    }
    return make_result("E9", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
