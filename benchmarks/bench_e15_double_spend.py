"""E15 (§IV-A): double-spend economics.

Monte-Carlo races between an attacker's private branch and the honest
chain, across attacker hash shares and confirmation depths; empirical
success rates must match Nakamoto's closed form, and the supermajority
assumption's cliff at 50% must appear.
"""

import random
import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.confirmation.nakamoto import (
    attacker_success_probability,
    rosenfeld_success_probability,
)
from repro.metrics.stats import binomial_ci
from repro.workloads.attacks import DoubleSpendAttacker
from repro.metrics.tables import render_table

TRIALS = 3000


def sweep(seed=0):
    rows = []
    rng = random.Random(seed)
    for share in (0.10, 0.25, 0.40, 0.49):
        for depth in (1, 3, 6):
            attacker = DoubleSpendAttacker(share, depth, rng)
            empirical = attacker.success_rate(TRIALS)
            nakamoto = attacker_success_probability(share, depth)
            exact = rosenfeld_success_probability(share, depth)
            lo, hi = binomial_ci(int(empirical * TRIALS), TRIALS)
            rows.append((share, depth, empirical, nakamoto, exact, lo, hi))
    return rows


def test_e15_double_spend_races(benchmark):
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = sweep()

    table_rows = []
    for share, depth, empirical, nakamoto, exact, lo, hi in rows:
        table_rows.append([
            f"{share:.0%}", depth, f"{empirical:.4f}", f"{nakamoto:.4f}",
            f"{exact:.4f}", f"[{lo:.4f}, {hi:.4f}]",
        ])
        # Simulation agrees with the exact (negative-binomial) form;
        # Nakamoto's Poisson approximation is shown for reference.
        assert abs(empirical - exact) < max(0.02, (hi - lo)), (share, depth)

    by_key = {(s, d): e for s, d, e, *_ in rows}
    # More confirmations help; more hash power hurts; near-majority
    # attackers succeed often even at depth 6.
    assert by_key[(0.25, 6)] < by_key[(0.25, 1)]
    assert by_key[(0.40, 3)] > by_key[(0.10, 3)]
    assert by_key[(0.49, 6)] > 0.5

    report(
        "E15 double-spend success: Monte Carlo vs closed forms",
        render_table(
            ["attacker share", "depth", "empirical", "nakamoto", "exact",
             "95% CI"],
            table_rows,
        ),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E15"].default_params), **(params or {})}
    share, depth, trials = p["attacker_share"], p["depth"], p["trials"]
    attacker = DoubleSpendAttacker(share, depth, random.Random(seed))
    empirical = attacker.success_rate(trials)
    lo, hi = binomial_ci(int(empirical * trials), trials)
    metrics = {
        "empirical": empirical,
        "nakamoto": attacker_success_probability(share, depth),
        "exact": rosenfeld_success_probability(share, depth),
        "ci95_lo": lo,
        "ci95_hi": hi,
    }
    return make_result("E15", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
