"""A10 (scale tier): TPS and propagation curves at 10^2 -> 10^4+ nodes.

The paper's Section VI numbers are protocol properties, but the *shape*
of the comparison — a protocol-capped blockchain vs a hardware-bound
DAG — should survive scaling the gossip population far past what a
fully-simulated deployment can afford.  Two tracks extend the curves:

* **Aggregate tier** — ``build_deployment(topology_scale=N)`` keeps a
  small fully-simulated boundary and models the surplus with mean-field
  :class:`~repro.net.aggregate.AggregateCluster` leaves (validated
  against exact small-N floods in tests/test_net_aggregate.py).
* **Sharded tier** — :class:`~repro.sim.sharded.ShardedPropagation`
  partitions one large flood across shard processes with epoch-barrier
  message exchange, seed-stable regardless of scheduling.
* **Sharded traffic tier** — ``build_deployment(topology_scale=
  TopologyScale(plane="sharded"))`` runs *full protocol traffic* (every
  gossiped tx/block) over a
  :class:`~repro.net.sharded_plane.ShardedMessagePlane` crowd, with
  byte-identical jobs=1 vs jobs=N plane fingerprints.
"""

import hashlib
import time
from dataclasses import replace

from conftest import report

from repro.blockchain.params import BITCOIN
from repro.core.deploy import build_deployment
from repro.core.experiment import EXPERIMENTS
from repro.metrics.tables import render_table
from repro.net.aggregate import TopologyScale
from repro.net.link import FAST_LINK
from repro.runner import make_result
from repro.sim.sharded import ShardedConfig, ShardedPropagation
from repro.workloads.open_loop import OpenLoopInjector

#: The decade sweep both paradigms walk (10^2 -> 10^4 total nodes).
SCALES = (100, 1_000, 10_000)


def measure_scale_point(paradigm, total_nodes, seed, duration_s=120.0,
                        offered_tps=2.0):
    """One (paradigm, population) point: settled TPS plus the aggregate
    tier's propagation picture."""
    if paradigm == "blockchain":
        # A miniature Bitcoin: 15 s blocks, 8 KB caps => ~2.1 TPS ceiling.
        params = replace(BITCOIN, target_block_interval_s=15.0,
                         max_block_size_bytes=8_000, confirmation_depth=2)
        deployment = build_deployment(
            "blockchain", chain_params=params, node_count=4,
            link_params=FAST_LINK, seed=seed, topology_scale=total_nodes)
    elif paradigm == "dag":
        deployment = build_deployment(
            "dag", node_count=4, representative_count=2, seed=seed,
            topology_scale=total_nodes)
    else:
        raise ValueError(f"paradigm {paradigm!r} has no scale curve")
    deployment.setup(8, 10**9)
    injector = OpenLoopInjector.from_sim_stream(
        deployment.ledger, accounts=8, rate_tps=offered_tps,
        duration_s=duration_s)
    injector.start()
    deployment.ledger.advance(duration_s * 1.25)
    confirmed = deployment.ledger.stats().entries_confirmed
    point = {
        "paradigm": paradigm,
        "total_nodes": total_nodes,
        "offered": injector.report.offered,
        "confirmed": confirmed,
        "tps": confirmed / duration_s,
    }
    point.update(deployment.scale_stats())
    return point


def sharded_point(total_nodes, shards, seed, jobs=1):
    """One sharded-flood point: coverage, latency percentiles and the
    arrival-vector fingerprint (the determinism witness)."""
    config = ShardedConfig(total_nodes=total_nodes, shards=shards,
                           seed=seed)
    started = time.perf_counter()
    result = ShardedPropagation(config).run(jobs=jobs)
    wall_s = time.perf_counter() - started
    return {
        "total_nodes": total_nodes,
        "shards": shards,
        "reached": result.reached,
        "epochs": result.epochs,
        "cross_shard_messages": result.cross_shard_messages,
        "p50_s": result.percentile(50),
        "p95_s": result.percentile(95),
        "fingerprint": result.fingerprint(),
        "nodes_per_s": total_nodes / max(wall_s, 1e-9),
    }


def sharded_traffic_point(paradigm, total_nodes, seed, *, shards=4, jobs=1,
                          duration_s=30.0, offered_tps=1.0):
    """One full-protocol-traffic point on the sharded plane: every
    gossiped tx/block is timed by an epoch-barrier crowd propagation
    over all ``total_nodes`` (not a mean-field model of them)."""
    scale = TopologyScale(total_nodes=total_nodes, plane="sharded",
                          shards=shards, jobs=jobs)
    if paradigm == "blockchain":
        params = replace(BITCOIN, target_block_interval_s=15.0,
                         max_block_size_bytes=8_000, confirmation_depth=2)
        deployment = build_deployment(
            "blockchain", chain_params=params, node_count=4,
            seed=seed, topology_scale=scale)
    elif paradigm == "dag":
        deployment = build_deployment(
            "dag", node_count=4, representative_count=2, seed=seed,
            topology_scale=scale)
    else:
        raise ValueError(f"paradigm {paradigm!r} has no sharded tier")
    try:
        deployment.setup(8, 10**9)
        injector = OpenLoopInjector.from_sim_stream(
            deployment.ledger, accounts=8, rate_tps=offered_tps,
            duration_s=duration_s)
        injector.start()
        deployment.ledger.advance(duration_s * 1.25)
        confirmed = deployment.ledger.stats().entries_confirmed
        point = {
            "paradigm": paradigm,
            "total_nodes": total_nodes,
            "offered": injector.report.offered,
            "confirmed": confirmed,
            "tps": confirmed / duration_s,
            "plane_fingerprint": deployment.network.plane_fingerprint(),
        }
        point.update(deployment.scale_stats())
    finally:
        deployment.close()
    return point


def test_a10_tps_curves_span_two_decades(benchmark):
    """Settled TPS for both paradigms from 10^2 to 10^4 total nodes:
    the DAG stays above the protocol-capped chain at every population,
    and propagation stretches as the modeled population deepens."""
    def build_curves():
        return {
            paradigm: [
                measure_scale_point(paradigm, n, seed=1, duration_s=90.0,
                                    offered_tps=rate)
                for n in SCALES
            ]
            for paradigm, rate in (("blockchain", 2.0), ("dag", 8.0))
        }

    curves = benchmark.pedantic(build_curves, rounds=1, iterations=1)
    rows = []
    for paradigm, points in curves.items():
        for point in points:
            rows.append([
                paradigm, point["total_nodes"], f"{point['tps']:.2f}",
                f"{point['propagation_max_s'] * 1000:.0f} ms",
                f"{point['modeled_deliveries']:.0f}",
            ])
            assert point["tps"] > 0
            assert point["modeled_nodes"] == \
                point["total_nodes"] - point["boundary_nodes"]
    for chain, dag in zip(curves["blockchain"], curves["dag"]):
        assert dag["tps"] > chain["tps"]
    # Deeper populations mean more mean-field hops, never fewer.
    for points in curves.values():
        assert points[-1]["propagation_max_s"] > \
            points[0]["propagation_max_s"]
    report(
        "A10a TPS and propagation vs total population (aggregate tier)",
        render_table(
            ["paradigm", "nodes", "TPS", "flood max", "modeled deliveries"],
            rows),
    )


def test_a10_sharded_flood_covers_ten_thousand_nodes(benchmark):
    point = benchmark.pedantic(
        lambda: sharded_point(10_000, 8, seed=5), rounds=1, iterations=1)
    assert point["reached"] == 10_000
    assert point["epochs"] >= 1
    assert point["cross_shard_messages"] > 0
    assert 0 < point["p50_s"] <= point["p95_s"]
    # Same seed, same arrival vector — regardless of wall-clock details.
    again = sharded_point(10_000, 8, seed=5)
    assert again["fingerprint"] == point["fingerprint"]
    other = sharded_point(10_000, 8, seed=6)
    assert other["fingerprint"] != point["fingerprint"]
    rows = [
        ["nodes reached", f"{point['reached']}/{point['total_nodes']}"],
        ["epochs", point["epochs"]],
        ["cross-shard messages", point["cross_shard_messages"]],
        ["flood p50 / p95", f"{point['p50_s']:.3f} s / "
                            f"{point['p95_s']:.3f} s"],
        ["fingerprint", point["fingerprint"]],
    ]
    report("A10b sharded flood at 10^4 nodes (epoch barriers)",
           render_table(["metric", "value"], rows))


def test_a10_sharded_plane_carries_protocol_traffic(benchmark):
    """Full tx/block gossip over a 2*10^3-node sharded crowd: both
    paradigms confirm entries while every broadcast is propagated across
    the whole population, and a jobs=2 rerun reproduces the jobs=1 plane
    fingerprint byte-for-byte."""
    def build_points():
        return {p: sharded_traffic_point(p, 2_000, seed=2, duration_s=30.0)
                for p in ("blockchain", "dag")}

    points = benchmark.pedantic(build_points, rounds=1, iterations=1)
    rows = []
    for paradigm, point in points.items():
        assert point["confirmed"] > 0
        assert point["messages_modeled"] > 0
        assert point["scaled"] == 1.0
        assert point["modeled_nodes"] == 2_000 - point["boundary_nodes"]
        again = sharded_traffic_point(paradigm, 2_000, seed=2, jobs=2,
                                      duration_s=30.0)
        assert again["plane_fingerprint"] == point["plane_fingerprint"]
        rows.append([
            paradigm, point["total_nodes"], f"{point['tps']:.2f}",
            f"{point['messages_modeled']:.0f}",
            f"{point['propagation_max_s'] * 1000:.0f} ms",
            point["plane_fingerprint"],
        ])
    report(
        "A10c full protocol traffic on the sharded plane "
        "(jobs=1 == jobs=2)",
        render_table(
            ["paradigm", "nodes", "TPS", "messages", "flood max",
             "plane fingerprint"], rows),
    )


def test_a10_run_fingerprint_is_seed_stable():
    """The registry entry point is deterministic: same params + seed
    reproduce the same fingerprint metric; a different seed does not."""
    params = {"scales": (100,), "duration_s": 30.0,
              "sharded_nodes": 1_000, "sharded_shards": 4,
              "traffic_nodes": 500, "traffic_duration_s": 15.0}
    first = run(params, 3)
    second = run(params, 3)
    third = run(params, 4)
    assert first["metrics"]["fingerprint"] == \
        second["metrics"]["fingerprint"]
    assert first["metrics"]["fingerprint"] != \
        third["metrics"]["fingerprint"]


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A10"].default_params), **(params or {})}
    total = int(p["total_nodes"])
    scales = (total,) if total else tuple(int(s) for s in p["scales"])
    sharded_nodes = total or int(p["sharded_nodes"])

    digest = hashlib.sha256()
    metrics = {}
    rates = {"blockchain": p["blockchain_tps"], "dag": p["dag_tps"]}
    for paradigm, rate in rates.items():
        for n in scales:
            point = measure_scale_point(
                paradigm, n, seed, duration_s=p["duration_s"],
                offered_tps=rate)
            metrics[f"{paradigm}_tps_{n}"] = point["tps"]
            metrics[f"{paradigm}_prop_max_s_{n}"] = \
                point["propagation_max_s"]
            digest.update(
                f"{paradigm}:{n}:{point['confirmed']}:"
                f"{point['modeled_deliveries']:.0f}:"
                f"{point['propagation_max_s']:.9f}".encode())
    sharded = sharded_point(sharded_nodes, int(p["sharded_shards"]), seed,
                            jobs=int(p["jobs"]))
    metrics["sharded_reached"] = sharded["reached"]
    metrics["sharded_epochs"] = sharded["epochs"]
    metrics["sharded_cross_shard_messages"] = \
        sharded["cross_shard_messages"]
    metrics["sharded_p50_s"] = sharded["p50_s"]
    metrics["sharded_p95_s"] = sharded["p95_s"]
    metrics["sharded_nodes_per_s"] = sharded["nodes_per_s"]
    digest.update(sharded["fingerprint"].encode())
    # Full protocol traffic over the sharded plane (--topology-scale N
    # drives this tier to N as well; traffic_nodes=0 skips it).
    traffic_nodes = total or int(p["traffic_nodes"])
    if traffic_nodes:
        for paradigm, rate in rates.items():
            point = sharded_traffic_point(
                paradigm, traffic_nodes, seed,
                shards=int(p["sharded_shards"]), jobs=int(p["jobs"]),
                duration_s=p["traffic_duration_s"], offered_tps=rate)
            metrics[f"{paradigm}_traffic_tps"] = point["tps"]
            metrics[f"{paradigm}_traffic_messages"] = \
                point["messages_modeled"]
            metrics[f"{paradigm}_traffic_prop_max_s"] = \
                point["propagation_max_s"]
            digest.update(f"{paradigm}:traffic:"
                          f"{point['plane_fingerprint']}".encode())
    metrics["fingerprint"] = float(int(digest.hexdigest()[:12], 16))
    return make_result("A10", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
