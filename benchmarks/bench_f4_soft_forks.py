"""F4 (Fig. 4, §IV-A): soft forks form and resolve to the longest chain.

Runs a PoW network at several latency/interval ratios and shows the
figure's dynamics: concurrent blocks claim the same predecessor, both
branches grow, and the longer chain wins while the shorter is orphaned
(its transactions returning to the mempool).
"""

import time
from dataclasses import replace

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result

from repro.crypto.keys import KeyPair
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.confirmation.orphan import expected_orphan_rate
from repro.metrics.tables import render_table


def run_network(interval_s, latency_s, duration_s=4000, seed=5):
    params = replace(BITCOIN, target_block_interval_s=interval_s)
    keys = [KeyPair.from_seed(bytes([i + 1]) * 32) for i in range(2)]
    genesis = build_genesis_with_allocations({k.address: 10**6 for k in keys})
    sim = Simulator(seed=seed)
    net = Network(sim)
    link = LinkParams(latency_s=latency_s, jitter_s=latency_s / 2, bandwidth_bps=1e9)
    nodes = complete_topology(
        net, 5, lambda nid: BlockchainNode(nid, params, genesis), link
    )
    for i, node in enumerate(nodes):
        node.start_pow_mining(0.2, KeyPair.from_seed(bytes([50 + i]) * 32).address)
    sim.run(until=duration_s)
    observer = nodes[0]
    total_blocks = observer.stats.blocks_accepted
    orphaned = sum(n.stats.orphaned_blocks for n in nodes) / len(nodes)
    # Agreement is checked at confirmation depth, not at the tip: a live
    # fork at the instant the simulation stops is exactly Fig. 4's
    # transient state, while deep blocks must be identical everywhere.
    depth = 6
    check_height = max(min(n.chain.height for n in nodes) - depth, 0)
    deep_blocks = {n.chain.block_at_height(check_height).block_id for n in nodes}
    converged = len(deep_blocks) == 1
    return total_blocks, orphaned, converged


def test_f4_soft_forks(benchmark):
    rows = []
    measured = {}
    scenarios = [(60.0, 0.2), (60.0, 6.0), (20.0, 6.0)]
    for interval, latency in scenarios:
        blocks, orphaned, converged = run_network(interval, latency)
        rate = orphaned / max(blocks, 1)
        model = expected_orphan_rate(latency * 2, interval)
        measured[(interval, latency)] = rate
        rows.append([f"{interval:.0f}s", f"{latency:.1f}s", blocks,
                     f"{rate:.3f}", f"{model:.3f}", converged])

    benchmark(run_network, 20.0, 6.0, 1000)

    # Shape: forks grow with latency/interval ratio; consensus always
    # converges to one chain (Fig. 4's resolution).
    assert measured[(60.0, 6.0)] > measured[(60.0, 0.2)]
    assert measured[(20.0, 6.0)] > measured[(60.0, 6.0)]
    assert all(row[5] for row in rows)

    report(
        "F4 soft forks vs latency/interval (Fig. 4)",
        render_table(
            ["interval", "latency", "blocks", "orphan rate", "model", "converged"],
            rows,
        ),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["F4"].default_params), **(params or {})}
    blocks, orphaned, converged = run_network(
        p["interval_s"], p["latency_s"], duration_s=p["duration_s"], seed=seed
    )
    metrics = {
        "blocks": blocks,
        "orphan_rate": orphaned / max(blocks, 1),
        "model_orphan_rate": expected_orphan_rate(
            p["latency_s"] * 2, p["interval_s"]
        ),
        "converged": converged,
    }
    return make_result("F4", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
