"""F2 (Fig. 2, §II-B): the block-lattice as a data structure.

Rebuilds the figure's shape: one chain per account, one transaction per
DAG node, cross-chain edges from sends to receives, and a genesis
transaction defining the initial state.
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.crypto.keys import KeyPair
from repro.dag.blocks import BlockType, make_open, make_receive, make_send
from repro.dag.lattice import Lattice
from repro.dag.params import NanoParams
from repro.metrics.tables import render_table


def build_lattice(accounts=10, transfers_per_account=5, seed=0):
    import random

    rng = random.Random(seed)
    lattice = Lattice(NanoParams(work_difficulty=1))
    genesis_key = KeyPair.generate(rng)
    lattice.create_genesis(genesis_key, 10**12)
    users = []
    for _ in range(accounts):
        user = KeyPair.generate(rng)
        send = make_send(
            genesis_key, lattice.chain(genesis_key.address).head,
            user.address, 1_000_000, work_difficulty=1,
        )
        lattice.process(send)
        lattice.process(
            make_open(user, send.block_hash, 1_000_000,
                      representative=genesis_key.address, work_difficulty=1)
        )
        users.append(user)
    for i, user in enumerate(users):
        peer = users[(i + 1) % len(users)]
        for _ in range(transfers_per_account):
            send = make_send(
                user, lattice.chain(user.address).head, peer.address, 100,
                work_difficulty=1,
            )
            lattice.process(send)
            lattice.process(
                make_receive(peer, lattice.chain(peer.address).head,
                             send.block_hash, 100, work_difficulty=1)
            )
    return lattice, users


def test_f2_lattice_invariants(benchmark):
    lattice, users = benchmark(build_lattice)

    # Fig. 2 invariants: every account has its own chain; every node holds
    # exactly one transaction; chains interlink only through send/receive.
    assert lattice.account_count() == len(users) + 1
    for user in users:
        chain = lattice.chain(user.address)
        assert chain.blocks[0].block_type == BlockType.OPEN
        for prev, block in zip(chain.blocks, chain.blocks[1:]):
            assert block.previous == prev.block_hash
            assert block.account == user.address

    rows = [
        ["account chains", lattice.account_count()],
        ["DAG nodes (1 tx each)", lattice.block_count()],
        ["unsettled sends", lattice.pending_count()],
        ["total supply conserved", lattice.total_supply() == 10**12],
        ["ledger bytes", lattice.serialized_size()],
    ]
    report("F2 block-lattice structure (Fig. 2)", render_table(["property", "value"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["F2"].default_params), **(params or {})}
    lattice, users = build_lattice(
        accounts=p["accounts"],
        transfers_per_account=p["transfers_per_account"],
        seed=seed,
    )
    chains_ok = all(
        lattice.chain(u.address).blocks[0].block_type == BlockType.OPEN
        for u in users
    )
    metrics = {
        "account_chains": lattice.account_count(),
        "dag_nodes": lattice.block_count(),
        "pending_sends": lattice.pending_count(),
        "supply_conserved": lattice.total_supply() == 10**12,
        "open_first_ok": chains_ok,
        "ledger_bytes": lattice.serialized_size(),
    }
    return make_result("F2", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
