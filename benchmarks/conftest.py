"""Shared helpers for the benchmark harness.

Every bench prints the rows/series the paper reports (so running
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation)
and asserts the claim's *shape* — who wins, by roughly what factor,
where crossovers fall.
"""

from __future__ import annotations

import sys


def report(title: str, body: str) -> None:
    """Print a bench's result block, visible under ``-s`` and in logs."""
    print(f"\n=== {title} ===", file=sys.stderr)
    print(body, file=sys.stderr)
