"""Shared helpers for the benchmark harness.

Every bench prints the rows/series the paper reports (so running
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation)
and asserts the claim's *shape* — who wins, by roughly what factor,
where crossovers fall.

Every bench additionally exposes the uniform entry point the sweep
runner (``repro.runner``) fans out over::

    def run(params: dict, seed: int) -> dict   # repro.runner.spec schema

and a thin ``__main__`` wrapper (:func:`bench_main`) so ``python
benchmarks/bench_xxx.py [seed]`` prints one trial's JSON envelope.
"""

from __future__ import annotations

import json
import sys


def report(title: str, body: str) -> None:
    """Print a bench's result block, visible under ``-s`` and in logs."""
    print(f"\n=== {title} ===", file=sys.stderr)
    print(body, file=sys.stderr)


def bench_main(run) -> None:
    """Thin ``__main__`` wrapper around a bench's uniform ``run``."""
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    print(json.dumps(run({}, seed), indent=2, sort_keys=True))
