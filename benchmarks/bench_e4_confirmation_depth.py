"""E4 (§IV-A): confirmation confidence vs depth.

Regenerates the table behind the "6 confirmations (Bitcoin) / 5-11
(Ethereum)" convention: attacker success probability falls geometrically
with depth, and the depth needed for a given risk grows with the
attacker's hash share.  Casper-FFG-style checkpoints make deep reversals
impossible outright.
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.confirmation.nakamoto import (
    attacker_success_probability,
    confirmations_for_confidence,
    success_curve,
)
from repro.metrics.tables import render_table


def test_e4_reversal_probability_vs_depth(benchmark):
    curve = benchmark(success_curve, 0.1, 12)

    rows = [[z, f"{p:.2e}"] for z, p in enumerate(curve)]
    # Monotone decay; < 0.1% by depth 5-6 for a 10% attacker.
    assert all(a >= b for a, b in zip(curve, curve[1:]))
    assert curve[6] < 1e-3
    report(
        "E4a attack success vs confirmation depth (q=10%)",
        render_table(["depth z", "P(success)"], rows),
    )


def test_e4_depth_conventions(benchmark):
    def depth_table():
        return [
            (q, confirmations_for_confidence(q, 0.001))
            for q in (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)
        ]

    table = benchmark(depth_table)
    rows = [[f"{q:.0%}", z] for q, z in table]
    depths = dict(table)
    # The conventions the paper cites live inside this table: ~6 blocks
    # covers a 10-15% attacker at 0.1% risk; 5-11 covers 10-20%.
    assert depths[0.10] <= 6 <= depths[0.15]
    assert 5 <= depths[0.10] and depths[0.20] <= 11
    # Depth explodes as the attacker approaches 50%.
    assert depths[0.30] > 2 * depths[0.15]
    report(
        "E4b depth needed for <0.1% reversal risk",
        render_table(["attacker share", "confirmations"], rows),
    )


def checkpoint_scenario():
    from repro.crypto.keys import KeyPair
    from repro.crypto.pow import MAX_TARGET
    from repro.common.errors import CementedBlockError
    from repro.blockchain.block import assemble_block, build_genesis_block
    from repro.blockchain.chain import ChainStore
    from repro.blockchain.transaction import make_coinbase

    key = KeyPair.from_seed(b"\x02" * 32)
    store = ChainStore(build_genesis_block(key.address, 1000))
    parent = store.genesis
    for n in range(1, 6):
        block = assemble_block(
            parent.header, [make_coinbase(key.address, 1, nonce=n)],
            float(n), MAX_TARGET,
        )
        store.add_block(block)
        parent = block
    store.cement(4)  # finalized checkpoint
    # A heavier attacker branch from genesis tries to rewrite history.
    side = store.genesis
    try:
        for n in range(10, 18):
            block = assemble_block(
                side.header, [make_coinbase(key.address, 1, nonce=n)],
                float(n), MAX_TARGET,
            )
            store.add_block(block)
            side = block
        return False
    except CementedBlockError:
        return True


def test_e4_checkpoints_stop_majority_history_rewrites(benchmark):
    """Without finality no depth is safe against 51%; with Casper-style
    cementing the reorg is rejected structurally."""
    assert attacker_success_probability(0.51, 1000) == 1.0

    rejected = benchmark(checkpoint_scenario)
    assert rejected
    report(
        "E4c finality checkpoints",
        "majority rewrite attempt across a cemented checkpoint: REJECTED",
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E4"].default_params), **(params or {})}
    metrics = {
        "p_success": attacker_success_probability(p["attacker_share"], p["depth"]),
        "depth_needed": confirmations_for_confidence(
            p["attacker_share"], p["risk"]
        ),
        "checkpoint_rejected": checkpoint_scenario(),
    }
    return make_result("E4", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
