"""F3 (Fig. 3, §II-B): send/receive transaction handling.

Reproduces the figure's protocol: a transfer needs a send (S) on the
sender's chain and a matching receive (R) on the recipient's chain;
between the two the value is *pending* and the transfer *unsettled*; an
offline recipient cannot settle.
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.dag.bootstrap import build_nano_testbed, fund_accounts
from repro.net.link import LinkParams
from repro.metrics.tables import render_table

LINK = LinkParams(latency_s=0.05, jitter_s=0.02)


def run_send_receive_cycle(node_count=6, representative_count=3, seed=2,
                           amount=777):
    tb = build_nano_testbed(node_count=node_count,
                            representative_count=representative_count,
                            seed=seed, link_params=LINK)
    users = fund_accounts(tb, 2, 1_000_000, settle_time=2.0)
    tb.simulator.run(until=tb.simulator.now + 5)
    u0, u1 = users

    timeline = []
    receiver = tb.node_for(u1.address)
    receiver.set_online(False)  # the Fig. 3 offline case
    send = tb.node_for(u0.address).send_payment(u0.address, u1.address, amount)
    tb.simulator.run(until=tb.simulator.now + 5)
    observer = tb.node_for(u0.address)
    timeline.append(
        ["after send (receiver offline)",
         observer.lattice.pending_count(),
         observer.lattice.is_settled(send.block_hash),
         observer.balance(u1.address)]
    )

    receiver.set_online(True)
    receiver.bootstrap_from(observer)
    receiver.receive_pending(u1.address)
    tb.simulator.run(until=tb.simulator.now + 5)
    timeline.append(
        ["after receive (receiver online)",
         observer.lattice.pending_count(),
         observer.lattice.is_settled(send.block_hash),
         observer.balance(u1.address)]
    )
    return timeline


def test_f3_send_receive(benchmark):
    timeline = benchmark(run_send_receive_cycle)

    after_send, after_receive = timeline
    # Unsettled while the receiver is offline; settled after its receive.
    assert after_send[1] == 1 and after_send[2] is False
    assert after_send[3] == 1_000_000  # funds not yet in the balance
    assert after_receive[1] == 0 and after_receive[2] is True
    assert after_receive[3] == 1_000_777

    report(
        "F3 send/receive handling (Fig. 3)",
        render_table(
            ["phase", "pending sends", "settled", "recipient balance"], timeline
        ),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["F3"].default_params), **(params or {})}
    timeline = run_send_receive_cycle(
        node_count=p["node_count"],
        representative_count=p["representative_count"],
        seed=seed,
        amount=p["amount"],
    )
    after_send, after_receive = timeline
    metrics = {
        "pending_after_send": after_send[1],
        "settled_after_send": bool(after_send[2]),
        "pending_after_receive": after_receive[1],
        "settled_after_receive": bool(after_receive[2]),
        "recipient_balance_delta": after_receive[3] - after_send[3],
    }
    return make_result("F3", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
