"""E10 (§VI-A): bigger blocks buy TPS and cost decentralization.

Sweeps block size (Segwit2x's 2 MB among the points): TPS grows
linearly, per-node validation load grows linearly, and past consumer
capacity "the network [would rely] on supercomputers"; bigger blocks
also propagate slower, raising the orphan rate.
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.common.units import MB, format_bytes
from repro.blockchain.params import BITCOIN
from repro.confirmation.orphan import expected_orphan_rate, propagation_delay_for_block
from repro.scaling.blocksize import blocksize_sweep, centralization_threshold_bytes
from repro.metrics.tables import render_table

SIZES = [1 * MB, 2 * MB, 4 * MB, 8 * MB, 32 * MB, 128 * MB, 1024 * MB, 4096 * MB]


def test_e10_blocksize_sweep(benchmark):
    points = benchmark(blocksize_sweep, BITCOIN, SIZES)

    rows = []
    for point in points:
        delay = propagation_delay_for_block(point.block_size_bytes, 50e6, 0.1)
        orphan = expected_orphan_rate(delay, BITCOIN.target_block_interval_s)
        rows.append([
            format_bytes(point.block_size_bytes),
            f"{point.tps:.1f}",
            format_bytes(point.node_load_bps) + "/s",
            "yes" if point.consumer_viable else "NO",
            f"{orphan:.4f}",
        ])

    # Linear TPS gain...
    assert points[1].tps == 2 * points[0].tps
    # ...linear node load...
    assert points[1].node_load_bps == 2 * points[0].node_load_bps
    # ...with a centralization crossover inside the sweep.
    assert points[0].consumer_viable and not points[-1].consumer_viable
    threshold = centralization_threshold_bytes(BITCOIN)
    assert SIZES[0] < threshold < SIZES[-1]
    # Orphan rate grows with size (monotone column).
    orphans = [float(row[4]) for row in rows]
    assert all(a <= b for a, b in zip(orphans, orphans[1:]))

    report(
        "E10 block-size sweep (Segwit2x = 2 MB row); "
        f"consumer cutoff at {format_bytes(threshold)}",
        render_table(
            ["block size", "TPS", "node load", "consumer ok", "orphan rate"], rows
        ),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E10"].default_params), **(params or {})}
    size = int(p["block_size_mb"] * MB)
    point = blocksize_sweep(BITCOIN, [size])[0]
    delay = propagation_delay_for_block(size, 50e6, 0.1)
    metrics = {
        "tps": point.tps,
        "node_load_bps": point.node_load_bps,
        "consumer_viable": point.consumer_viable,
        "orphan_rate": expected_orphan_rate(delay, BITCOIN.target_block_interval_s),
        "centralization_threshold_mb": centralization_threshold_bytes(BITCOIN) / MB,
    }
    return make_result("E10", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
