"""E10 (§VI-A): bigger blocks buy TPS and cost decentralization.

Sweeps block size (Segwit2x's 2 MB among the points): TPS grows
linearly, per-node validation load grows linearly, and past consumer
capacity "the network [would rely] on supercomputers"; bigger blocks
also propagate slower, raising the orphan rate.
"""

from conftest import report

from repro.common.units import MB, format_bytes
from repro.blockchain.params import BITCOIN
from repro.confirmation.orphan import expected_orphan_rate, propagation_delay_for_block
from repro.scaling.blocksize import blocksize_sweep, centralization_threshold_bytes
from repro.metrics.tables import render_table

SIZES = [1 * MB, 2 * MB, 4 * MB, 8 * MB, 32 * MB, 128 * MB, 1024 * MB, 4096 * MB]


def test_e10_blocksize_sweep(benchmark):
    points = benchmark(blocksize_sweep, BITCOIN, SIZES)

    rows = []
    for point in points:
        delay = propagation_delay_for_block(point.block_size_bytes, 50e6, 0.1)
        orphan = expected_orphan_rate(delay, BITCOIN.target_block_interval_s)
        rows.append([
            format_bytes(point.block_size_bytes),
            f"{point.tps:.1f}",
            format_bytes(point.node_load_bps) + "/s",
            "yes" if point.consumer_viable else "NO",
            f"{orphan:.4f}",
        ])

    # Linear TPS gain...
    assert points[1].tps == 2 * points[0].tps
    # ...linear node load...
    assert points[1].node_load_bps == 2 * points[0].node_load_bps
    # ...with a centralization crossover inside the sweep.
    assert points[0].consumer_viable and not points[-1].consumer_viable
    threshold = centralization_threshold_bytes(BITCOIN)
    assert SIZES[0] < threshold < SIZES[-1]
    # Orphan rate grows with size (monotone column).
    orphans = [float(row[4]) for row in rows]
    assert all(a <= b for a, b in zip(orphans, orphans[1:]))

    report(
        "E10 block-size sweep (Segwit2x = 2 MB row); "
        f"consumer cutoff at {format_bytes(threshold)}",
        render_table(
            ["block size", "TPS", "node load", "consumer ok", "orphan rate"], rows
        ),
    )
