"""Ablation A5: closed-loop difficulty retargeting in a live network.

E1b shows the retarget arithmetic converging analytically; this bench
closes the loop inside a running simulation: 8x hash power joins a
4-miner network mid-run, blocks briefly come 8x too fast, and the live
retargeter restores the 10 s target — "the block generation time
converges to a fixed value" (Section VI-A), measured, not derived.
"""

import time
from dataclasses import replace

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.blockchain.retarget import LiveRetargeter, apply_hashrate_shock
from repro.metrics.tables import render_table

PARAMS = replace(BITCOIN, target_block_interval_s=10.0)


def run_shock_scenario(seed=8, shock_at=600.0, horizon=4200.0, shock_factor=8.0):
    key = KeyPair.from_seed(b"\x51" * 32)
    genesis = build_genesis_with_allocations({key.address: 10**6})
    sim = Simulator(seed=seed)
    net = Network(sim)
    nodes = [
        n for n in complete_topology(
            net, 4, lambda nid: BlockchainNode(nid, PARAMS, genesis), FAST_LINK
        )
        if isinstance(n, BlockchainNode)
    ]
    for i, node in enumerate(nodes):
        node.start_pow_mining(0.25, KeyPair.from_seed(bytes([20 + i]) * 32).address)
    retargeter = LiveRetargeter(nodes, target_interval_s=10.0, check_every_s=200.0)
    retargeter.start(sim, until=horizon)

    samples = []
    last_height = 0
    window = 200.0
    t = window
    shocked = False
    while t <= horizon:
        if not shocked and t > shock_at:
            apply_hashrate_shock(nodes, shock_factor)
            shocked = True
        sim.run(until=t)
        height = nodes[0].chain.height
        blocks = height - last_height
        samples.append((t, window / max(blocks, 1)))
        last_height = height
        t += window
    return samples, nodes[0].miner.difficulty_factor


def test_a5_live_retarget(benchmark):
    samples, final_difficulty = benchmark.pedantic(
        run_shock_scenario, rounds=1, iterations=1
    )
    rows = [[f"{t:.0f}", f"{interval:.1f}"] for t, interval in samples[::3]]

    before = [i for t, i in samples if t <= 600]
    during = [i for t, i in samples if 600 < t <= 1000]
    after = [i for t, i in samples if t > 3000]
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731

    # Calibrated at 10 s; the shock makes blocks several times faster;
    # the controller brings the interval back near target.
    assert 6 <= mean(before) <= 14
    assert mean(during) < mean(before) / 2
    assert 6 <= mean(after) <= 14
    assert final_difficulty > 4.0  # absorbed most of the 8x shock

    report(
        "A5 live retargeting: 8x hashrate shock at t=600s "
        f"(final difficulty factor {final_difficulty:.1f}x)",
        render_table(["time (s)", "measured interval (s)"], rows),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A5"].default_params), **(params or {})}
    samples, final_difficulty = run_shock_scenario(
        seed=seed, shock_at=p["shock_at_s"], horizon=p["horizon_s"],
        shock_factor=p["shock_factor"],
    )
    shock_at = p["shock_at_s"]
    before = [i for t, i in samples if t <= shock_at]
    during = [i for t, i in samples if shock_at < t <= shock_at + 400]
    after = [i for t, i in samples if t > p["horizon_s"] - 600]
    mean = lambda xs: sum(xs) / max(len(xs), 1)  # noqa: E731
    metrics = {
        "interval_before_s": mean(before),
        "interval_during_shock_s": mean(during),
        "interval_after_s": mean(after),
        "final_difficulty_factor": final_difficulty,
    }
    return make_result("A5", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
