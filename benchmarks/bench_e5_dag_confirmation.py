"""E5 (§IV-B): DAG confirmation = one vote round.

Measures confirmation latency in a running Nano testbed (votes piggyback
on propagation) and compares it with blockchain's depth-based wait; also
exercises cementing ("prevent transactions from being rolled back").
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.common.errors import CementedBlockError
from repro.confirmation.dag_confirmation import blockchain_vs_dag_latency
from repro.dag.bootstrap import build_nano_testbed, fund_accounts
from repro.net.link import LinkParams
from repro.metrics.stats import summarize
from repro.metrics.tables import render_table

LINK = LinkParams(latency_s=0.08, jitter_s=0.04)


def measure_dag_confirmation(transfers=10, seed=3, node_count=8,
                             representative_count=4):
    tb = build_nano_testbed(
        node_count=node_count, representative_count=representative_count,
        seed=seed, link_params=LINK,
    )
    users = fund_accounts(tb, 4, 10**6, settle_time=2.0)
    tb.simulator.run(until=tb.simulator.now + 5)
    latencies = []
    for i in range(transfers):
        sender = users[i % len(users)]
        recipient = users[(i + 1) % len(users)]
        start = tb.simulator.now
        block = tb.node_for(sender.address).send_payment(
            sender.address, recipient.address, 100
        )
        tb.simulator.run(until=tb.simulator.now + 5)
        confirmed_at = tb.nodes[0].confirmation_times.get(block.block_hash)
        assert confirmed_at is not None, "block never reached quorum"
        latencies.append(confirmed_at - start)
    return latencies


def test_e5_vote_confirmation_latency(benchmark):
    latencies = benchmark(measure_dag_confirmation, transfers=4)
    latencies = measure_dag_confirmation(transfers=12)
    stats = summarize(latencies)

    bitcoin_wait, dag_wait = blockchain_vs_dag_latency(600.0, 6, stats.mean)
    ethereum_wait, _ = blockchain_vs_dag_latency(15.0, 11, stats.mean)
    rows = [
        ["nano (measured vote round)", f"{stats.mean:.2f} s"],
        ["bitcoin (6 x 600 s)", f"{bitcoin_wait:.0f} s"],
        ["ethereum (11 x 15 s)", f"{ethereum_wait:.0f} s"],
        ["nano advantage vs bitcoin", f"{bitcoin_wait / stats.mean:,.0f}x"],
    ]
    # One vote round beats depth-waiting by orders of magnitude.
    assert stats.mean < 2.0
    assert bitcoin_wait / stats.mean > 1000
    assert ethereum_wait / stats.mean > 50
    report(
        "E5a confirmation latency: vote quorum vs depth",
        render_table(["system", "time to confirmation"], rows),
    )


def test_e5_cementing_prevents_rollback(benchmark):
    def cement_scenario():
        tb = build_nano_testbed(
            node_count=5, representative_count=3, seed=7, link_params=LINK
        )
        users = fund_accounts(tb, 2, 10**6, settle_time=2.0)
        block = tb.node_for(users[0].address).send_payment(
            users[0].address, users[1].address, 42
        )
        tb.simulator.run(until=tb.simulator.now + 5)
        observer = tb.nodes[0]
        assert observer.lattice.is_cemented(block.block_hash)
        try:
            observer.lattice.rollback(block.block_hash)
            return False
        except CementedBlockError:
            return True

    protected = benchmark(cement_scenario)
    assert protected
    report(
        "E5b block cementing",
        "rollback of a quorum-confirmed (cemented) block: REJECTED",
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E5"].default_params), **(params or {})}
    latencies = measure_dag_confirmation(
        transfers=p["transfers"], seed=seed, node_count=p["node_count"],
        representative_count=p["representative_count"],
    )
    stats = summarize(latencies)
    bitcoin_wait, _ = blockchain_vs_dag_latency(600.0, 6, stats.mean)
    metrics = {
        "mean_confirmation_s": stats.mean,
        "max_confirmation_s": stats.maximum,
        "bitcoin_wait_s": bitcoin_wait,
        "speedup_vs_bitcoin": bitcoin_wait / stats.mean,
    }
    return make_result("E5", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
