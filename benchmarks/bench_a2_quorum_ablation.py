"""Ablation A2: ORV quorum fraction vs liveness.

Design choice ablated: the fraction of online representative weight a
block needs for confirmation (Nano uses a majority).  Low quorums
confirm with fewer voters (faster, weaker); high quorums tolerate less
offline weight before confirmation stalls entirely — the liveness cliff
this bench maps.

Weight layout (supply 10^15): six users funded 1.5e14 each, round-robin
over nodes n0..n5; reps are n0..n3.  Users on non-rep nodes delegate to
the first representative, so rep0 ends up with ~55% of weight and reps
1-3 with ~15% each.  Knocking rep0+rep1 offline leaves 30% of the quorum
base able to vote.
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.dag.bootstrap import build_nano_testbed, fund_accounts
from repro.dag.params import NanoParams
from repro.net.link import LinkParams
from repro.metrics.tables import render_table

LINK = LinkParams(latency_s=0.05, jitter_s=0.02)


def run_with_quorum(quorum, offline_reps=0, seed=4):
    """Returns (confirmed?, confidence, votable weight fraction)."""
    params = NanoParams(work_difficulty=1, quorum_fraction=quorum)
    tb = build_nano_testbed(
        node_count=6, representative_count=4, seed=seed,
        params=params, link_params=LINK, supply=10**15,
    )
    users = fund_accounts(tb, 6, 15 * 10**13, settle_time=1.5)
    # Knock the heaviest representatives offline *after* funding settles.
    offline_addresses = []
    for rep_node in tb.representative_nodes()[:offline_reps]:
        rep_node.set_online(False)
        offline_addresses.append(rep_node.representative_address)
    observer = tb.nodes[-1]
    reps_ledger = observer.lattice.reps
    votable = 1.0 - sum(
        reps_ledger.weight(a) for a in offline_addresses
    ) / max(reps_ledger.online_weight(), 1)

    sender, recipient = users[4], users[5]  # wallets on non-rep nodes
    block = tb.node_for(sender.address).send_payment(
        sender.address, recipient.address, 123
    )
    tb.simulator.run(until=tb.simulator.now + 10)
    return (
        observer.is_confirmed(block.block_hash),
        observer.confirmation_confidence(block.block_hash),
        votable,
    )


def test_a2_quorum_ablation(benchmark):
    benchmark.pedantic(run_with_quorum, args=(0.5,), rounds=1, iterations=1)

    rows = []
    outcomes = {}
    for quorum in (0.25, 0.50, 0.90):
        for offline in (0, 2):
            confirmed, confidence, votable = run_with_quorum(
                quorum, offline_reps=offline
            )
            outcomes[(quorum, offline)] = confirmed
            rows.append([
                f"{quorum:.0%}", offline, f"{votable:.2f}",
                "yes" if confirmed else "NO", f"{confidence:.2f}",
            ])

    # All reps online: every quorum reaches confirmation.
    assert all(outcomes[(q, 0)] for q in (0.25, 0.50, 0.90))
    # ~70% of weight offline (but still in the quorum base): only the
    # 25% quorum stays live — demanding near-unanimity costs liveness.
    assert outcomes[(0.25, 2)]
    assert not outcomes[(0.50, 2)]
    assert not outcomes[(0.90, 2)]

    report(
        "A2 ORV quorum ablation: confirmation vs offline representative weight",
        render_table(
            ["quorum", "reps offline (of 4)", "votable weight frac",
             "confirmed", "confidence"],
            rows,
        ),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A2"].default_params), **(params or {})}
    confirmed, confidence, votable = run_with_quorum(
        p["quorum"], offline_reps=p["offline_reps"], seed=seed
    )
    metrics = {
        "confirmed": confirmed,
        "confidence": confidence,
        "votable_weight_fraction": votable,
    }
    return make_result("A2", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
