"""Ablation A1: gossip topology vs propagation and soft-fork rate.

Design choice ablated: the network substrate's topology.  The paper's
fork dynamics (Fig. 4) depend on propagation delay, which depends on the
overlay shape.  We flood the same message through a clique, a random
regular graph, a small world, and a line, then mine on the two extremes
to show the fork-rate consequence.
"""

import time
from dataclasses import replace

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.crypto.keys import KeyPair
from repro.net.link import LinkParams
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.topology import (
    complete_topology,
    line_topology,
    random_regular_topology,
    small_world_topology,
)
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.metrics.tables import render_table

LINK = LinkParams(latency_s=0.5, jitter_s=0.1, bandwidth_bps=1e9)
N = 24


class Sink(NetworkNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.arrival = None

    def handle_message(self, sender_id, message):
        if self.arrival is None:
            self.arrival = self.network.simulator.now


def flood_time(builder, n=N, sim_seed=1, **kwargs):
    sim = Simulator(seed=sim_seed)
    net = Network(sim)
    nodes = builder(net, n, Sink, link_params=LINK, **kwargs) if kwargs else builder(
        net, n, Sink, LINK
    )
    nodes[0].broadcast(Message(kind="x", payload=None, size_bytes=100))
    sim.run()
    arrivals = [node.arrival for node in nodes[1:]]
    return max(arrivals), sum(arrivals) / len(arrivals)


def fork_rate(builder, duration=4000.0, interval=20.0, n=N, sim_seed=3, **kwargs):
    params = replace(BITCOIN, target_block_interval_s=interval)
    key = KeyPair.from_seed(b"\x01" * 32)
    genesis = build_genesis_with_allocations({key.address: 10**6})
    sim = Simulator(seed=sim_seed)
    net = Network(sim)
    factory = lambda nid: BlockchainNode(nid, params, genesis)  # noqa: E731
    nodes = builder(net, n, factory, link_params=LINK, **kwargs) if kwargs else builder(
        net, n, factory, LINK
    )
    for i, node in enumerate(nodes):
        node.start_pow_mining(1.0 / n, KeyPair.from_seed(bytes([50 + i]) * 32).address)
    sim.run(until=duration)
    blocks = nodes[0].stats.blocks_accepted
    orphans = sum(node.stats.orphaned_blocks for node in nodes) / len(nodes)
    return orphans / max(blocks, 1)


TOPOLOGIES = {
    "complete": complete_topology,
    "small-world": small_world_topology,
    "line": line_topology,
}


def test_a1_topology_ablation(benchmark):
    benchmark(flood_time, complete_topology)

    shapes = [
        ("complete", complete_topology, {}),
        ("random-4-regular", random_regular_topology, {"degree": 4, "seed": 2}),
        ("small-world", small_world_topology, {"seed": 2}),
        ("line", line_topology, {}),
    ]
    rows = []
    worst = {}
    for name, builder, kwargs in shapes:
        if "degree" in kwargs:
            t_max, t_mean = flood_time(
                lambda net, n, f, link_params, d=kwargs["degree"], s=kwargs["seed"]:
                random_regular_topology(net, n, d, f, link_params, seed=s)
            )
        else:
            t_max, t_mean = flood_time(builder, **kwargs)
        worst[name] = t_max
        rows.append([name, f"{t_mean:.2f} s", f"{t_max:.2f} s"])

    # Denser overlays propagate faster; the line is the pathological case.
    assert worst["complete"] < worst["small-world"] <= worst["line"]
    assert worst["line"] > 5 * worst["complete"]

    clique_forks = fork_rate(complete_topology)
    line_forks = fork_rate(line_topology)
    rows.append(["fork rate: clique", f"{clique_forks:.3f}", ""])
    rows.append(["fork rate: line", f"{line_forks:.3f}", ""])
    assert line_forks > clique_forks  # slower propagation ⇒ more soft forks

    report(
        "A1 topology ablation: flood latency and fork-rate consequence",
        render_table(["topology / metric", "mean", "max"], rows),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A1"].default_params), **(params or {})}
    builder = TOPOLOGIES[p["topology"]]
    kwargs = {"seed": seed} if p["topology"] == "small-world" else {}
    t_max, t_mean = flood_time(builder, n=p["nodes"], sim_seed=seed, **kwargs)
    metrics = {
        "flood_max_s": t_max,
        "flood_mean_s": t_mean,
    }
    if p["measure_forks"]:
        metrics["fork_rate"] = fork_rate(
            builder, duration=p["fork_duration_s"], n=p["nodes"],
            sim_seed=seed, **kwargs,
        )
    return make_result("A1", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
