"""E8 (§V-B): Nano pruning and node types.

"Since the accounts keep record of account balances instead of unspent
transaction inputs, all other historical data can be discarded" — pruning
a grown lattice to chain heads preserves every balance.  Footprints of
the three node types (historical / current / light) are measured.
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.common.units import format_bytes
from repro.crypto.keys import KeyPair
from repro.dag.blocks import make_open, make_receive, make_send
from repro.dag.lattice import Lattice
from repro.dag.params import NanoParams
from repro.storage.dag_pruning import footprint_by_type, prune_lattice
from repro.metrics.tables import render_table


def build_busy_lattice(accounts=20, transfers=200, seed=0):
    import random

    rng = random.Random(seed)
    lattice = Lattice(NanoParams(work_difficulty=1))
    genesis_key = KeyPair.generate(rng)
    lattice.create_genesis(genesis_key, 10**15)
    users = []
    for _ in range(accounts):
        user = KeyPair.generate(rng)
        send = make_send(genesis_key, lattice.chain(genesis_key.address).head,
                         user.address, 10**9, work_difficulty=1)
        lattice.process(send)
        lattice.process(make_open(user, send.block_hash, 10**9,
                                  representative=genesis_key.address,
                                  work_difficulty=1))
        users.append(user)
    for _ in range(transfers):
        sender = rng.choice(users)
        recipient = rng.choice([u for u in users if u is not sender])
        amount = rng.randint(1, 1000)
        send = make_send(sender, lattice.chain(sender.address).head,
                         recipient.address, amount, work_difficulty=1)
        lattice.process(send)
        lattice.process(make_receive(recipient,
                                     lattice.chain(recipient.address).head,
                                     send.block_hash, amount, work_difficulty=1))
    return lattice, users


def test_e8_dag_pruning(benchmark):
    lattice, users = build_busy_lattice()
    footprints = footprint_by_type(lattice)
    balances_before = {u.address: lattice.balance(u.address) for u in users}

    result = benchmark.pedantic(
        lambda: prune_lattice(build_busy_lattice()[0]), rounds=3, iterations=1
    )
    prune_result = prune_lattice(lattice)

    # Balance-carrying heads ⇒ pruning preserves every balance exactly.
    for user in users:
        assert lattice.balance(user.address) == balances_before[user.address]
    # One head per account remains (no pending sends in this workload).
    assert lattice.block_count() == lattice.account_count()
    assert prune_result.fraction_freed > 0.9

    rows = [
        ["historical node", format_bytes(footprints["historical"])],
        ["current node (heads only)", format_bytes(footprints["current"])],
        ["light node", format_bytes(footprints["light"])],
        ["pruning freed",
         f"{format_bytes(prune_result.bytes_freed)} ({prune_result.fraction_freed:.0%})"],
        ["balances preserved", "yes"],
    ]
    assert footprints["historical"] > footprints["current"] > footprints["light"] == 0
    report("E8 Nano node-type footprints and pruning", render_table(["metric", "value"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E8"].default_params), **(params or {})}
    lattice, users = build_busy_lattice(
        accounts=p["accounts"], transfers=p["transfers"], seed=seed
    )
    footprints = footprint_by_type(lattice)
    balances_before = {u.address: lattice.balance(u.address) for u in users}
    pruned = prune_lattice(lattice)
    metrics = {
        "fraction_freed": pruned.fraction_freed,
        "bytes_freed": pruned.bytes_freed,
        "historical_bytes": footprints["historical"],
        "current_bytes": footprints["current"],
        "balances_preserved": all(
            lattice.balance(u.address) == balances_before[u.address]
            for u in users
        ),
    }
    return make_result("E8", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
