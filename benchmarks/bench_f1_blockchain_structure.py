"""F1 (Fig. 1, §II-A): blockchain as a data structure.

Rebuilds the figure's shape: hash-linked blocks, each carrying a header
(with the predecessor's hash and a Merkle root over its transactions) —
and a genesis block with no predecessor.
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.crypto.keys import KeyPair
from repro.crypto.merkle import MerkleTree
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import assemble_block, build_genesis_block
from repro.blockchain.chain import ChainStore
from repro.blockchain.transaction import make_coinbase
from repro.metrics.tables import render_table


def build_chain(blocks=50, txs_per_block=10):
    key = KeyPair.from_seed(b"\x01" * 32)
    genesis = build_genesis_block(key.address, 10**9)
    store = ChainStore(genesis)
    parent = genesis
    for height in range(1, blocks + 1):
        body = [
            make_coinbase(key.address, 50, nonce=height * 1000 + i)
            for i in range(txs_per_block)
        ]
        block = assemble_block(parent.header, body, float(height), MAX_TARGET)
        store.add_block(block)
        parent = block
    return store


def test_f1_structure_invariants(benchmark):
    store = benchmark(build_chain)

    chain = store.main_chain()
    # Fig. 1 invariants: genesis has no predecessor; every other block
    # hash-links to its parent and commits to its body by Merkle root.
    assert chain[0].parent_id.is_zero()
    for parent, child in zip(chain, chain[1:]):
        assert child.parent_id == parent.block_id
        assert child.merkle_root_matches()

    # Tamper detection: editing any transaction breaks the commitment.
    victim = chain[10]
    tree = MerkleTree([tx.txid for tx in victim.transactions])
    assert tree.root == victim.header.merkle_root

    rows = [
        ["blocks", store.height + 1],
        ["transactions", sum(len(b.transactions) for b in chain)],
        ["header bytes", chain[1].header.size_bytes],
        ["merkle proof length (10 txs)", len(tree.proof(0).steps)],
        ["total size (bytes)", store.total_size_bytes()],
    ]
    report("F1 blockchain structure (Fig. 1)", render_table(["property", "value"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["F1"].default_params), **(params or {})}
    store = build_chain(blocks=p["blocks"], txs_per_block=p["txs_per_block"])
    chain = store.main_chain()
    hash_links_ok = chain[0].parent_id.is_zero() and all(
        child.parent_id == parent.block_id
        for parent, child in zip(chain, chain[1:])
    )
    merkle_ok = all(block.merkle_root_matches() for block in chain)
    metrics = {
        "blocks": store.height + 1,
        "transactions": sum(len(b.transactions) for b in chain),
        "hash_links_ok": hash_links_ok,
        "merkle_ok": merkle_ok,
        "total_bytes": store.total_size_bytes(),
        "bytes_per_tx": store.total_size_bytes()
        / max(sum(len(b.transactions) for b in chain), 1),
    }
    return make_result("F1", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
