"""Extension A4: the tangle as a third confirmation model.

Paper footnote 1 names IOTA as the other DAG approach.  This bench puts
the tangle's *structural* confirmation (confidence = probability a fresh
tip references you, driven by cumulative weight) next to the two models
the paper compares: blockchain depth and Nano's vote quorum — three
different answers to Section IV's question "when is an entry final?".
"""

import random
import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.confirmation.nakamoto import attacker_success_probability
from repro.crypto.keys import KeyPair
from repro.dag.tangle import Tangle, issue_transaction
from repro.metrics.tables import render_table


def grow_tangle(tx_count=60, seed=0, alpha=0.05, samples=40):
    rng = random.Random(seed)
    tangle = Tangle(work_difficulty=1)
    key = KeyPair.from_seed(b"\x21" * 32)
    tangle.create_genesis(key)
    target = None
    confidence_curve = []
    for i in range(tx_count):
        trunk, branch = tangle.select_tips_mcmc(rng, alpha=alpha)
        tx = issue_transaction(key, trunk, branch, f"p{i}".encode(), 1.0 + i)
        tangle.attach(tx)
        if i == 4:
            target = tx
        if target is not None and i >= 4 and i % 10 == 4:
            confidence_curve.append(
                (i - 4, tangle.confirmation_confidence(
                    target.tx_hash, rng, samples=samples, alpha=alpha
                ))
            )
    return tangle, target, confidence_curve


def test_a4_tangle_confirmation_model(benchmark):
    tangle, target, curve = benchmark.pedantic(grow_tangle, rounds=1, iterations=1)

    # The tangle's analogue of "depth": approvals accumulated on top.
    rows = [
        [f"{approvals} txs on top", f"{confidence:.2f}"]
        for approvals, confidence in curve
    ]
    confidences = [c for _, c in curve]
    # Confidence is (noisy-)monotone and saturates — same shape as
    # blockchain's reversal-probability decay, different mechanism.
    assert confidences[-1] >= confidences[0]
    assert confidences[-1] > 0.9
    assert tangle.cumulative_weight(target.tx_hash) > 10

    comparison = [
        ["blockchain", "k blocks on top",
         f"P(reversal, q=10%, k=6) = {attacker_success_probability(0.1, 6):.1e}"],
        ["nano (ORV)", "majority representative vote",
         "one vote round (see E5: ~0.1 s measured)"],
        ["tangle (IOTA)", "cumulative weight of approvers",
         f"confidence {confidences[-1]:.2f} after {curve[-1][0]} approvals"],
    ]
    report(
        "A4 three confirmation models (Section IV, extended per footnote 1)",
        render_table(["tangle growth", "confidence"], rows)
        + "\n\n"
        + render_table(["system", "finality signal", "measured"], comparison),
    )


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["A4"].default_params), **(params or {})}
    tangle, target, curve = grow_tangle(
        tx_count=p["tx_count"], seed=seed, alpha=p["alpha"],
        samples=p["samples"],
    )
    confidences = [c for _, c in curve]
    metrics = {
        "final_confidence": confidences[-1],
        "first_confidence": confidences[0],
        "cumulative_weight": tangle.cumulative_weight(target.tx_hash),
        "approvals": curve[-1][0],
    }
    return make_result("A4", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
