"""E14 (§VI-B): Nano's throughput is protocol-uncapped, hardware-bound.

"There is no inherent cap in the transaction throughput in the protocol
itself ... the limit is currently determined by the quality of consumer
grade hardware and network conditions" — peak 306 TPS vs average 105.75
on the 2018 stress test.

We drive a testbed at rising offered load with a per-node processing
model: settled throughput tracks offered load (no protocol knee) until
it saturates at the configured hardware capacity; bursts give a peak
well above the long-run average.
"""

import time

from conftest import report

from repro.core.experiment import EXPERIMENTS
from repro.runner import make_result
from repro.dag.bootstrap import build_nano_testbed, fund_accounts
from repro.dag.params import NanoParams
from repro.net.link import LinkParams
from repro.scaling.throughput import ThroughputMeter
from repro.trace import NullTracer
from repro.metrics.tables import render_table

LINK = LinkParams(latency_s=0.02, jitter_s=0.01, bandwidth_bps=1e9)


def drive_load(offered_tps, processing_tps=None, duration=30.0, seed=6):
    """Offered load = evenly spaced sends; returns settled TPS."""
    params = NanoParams(work_difficulty=1, node_processing_tps=400.0)
    # Nothing below reads the trace, so take the untraced fast path.
    tb = build_nano_testbed(
        node_count=4, representative_count=2, seed=seed,
        params=params, link_params=LINK, processing_tps=processing_tps,
        tracer=NullTracer(),
    )
    users = fund_accounts(tb, 2, 10**9, settle_time=1.0)
    sender, recipient = users
    wallet = tb.node_for(sender.address)
    meter = ThroughputMeter()
    observer = tb.nodes[-1]
    interval = 1.0 / offered_tps
    start = tb.simulator.now

    def submit():
        wallet.send_payment(sender.address, recipient.address, 1)

    tb.simulator.schedule_periodic(interval, submit, until=start + duration)
    tb.simulator.run(until=start + duration + 10.0)
    # Count sends the *observer* (not the sender) fully processed.
    chain = observer.lattice.chain(sender.address)
    settled = sum(1 for b in chain.blocks if b.block_type.value == "send")
    return settled / duration


def test_e14_no_protocol_cap(benchmark):
    benchmark.pedantic(drive_load, args=(50.0,), kwargs={"duration": 10.0},
                       rounds=1, iterations=1)

    rows = []
    measured = {}
    for offered in (20.0, 60.0, 120.0):
        tps = drive_load(offered, processing_tps=None)
        measured[offered] = tps
        rows.append([f"{offered:.0f}", "unlimited", f"{tps:.1f}"])
    # With ideal hardware, settled TPS tracks offered load linearly —
    # no protocol knee anywhere (unlike E9's hard ceiling).
    assert measured[60.0] > measured[20.0] * 2.4
    assert measured[120.0] > measured[60.0] * 1.7

    hw_cap = 40.0
    for offered in (20.0, 120.0):
        tps = drive_load(offered, processing_tps=hw_cap)
        rows.append([f"{offered:.0f}", f"{hw_cap:.0f}/node", f"{tps:.1f}"])
        measured[(offered, "hw")] = tps
    # With consumer-grade hardware the same protocol saturates at the
    # node's processing rate.
    assert measured[(120.0, "hw")] < hw_cap * 1.3
    assert measured[(120.0, "hw")] > hw_cap * 0.5

    report(
        "E14a Nano throughput: offered vs settled (protocol uncapped, "
        "hardware bound)",
        render_table(["offered TPS", "node hardware", "settled TPS"], rows),
    )


def test_e14_peak_vs_average(benchmark):
    """The stress-test shape: a burst peak far above the long-run average
    (306 vs 105.75 in the paper's citation)."""

    def burst_profile():
        meter = ThroughputMeter()
        # 5 s burst at 300 TPS, then 25 s trickle at 60 TPS.
        t = 0.0
        while t < 5.0:
            meter.record(t)
            t += 1 / 300.0
        while t < 30.0:
            meter.record(t)
            t += 1 / 60.0
        return meter

    meter = benchmark(burst_profile)
    peak = meter.peak_tps(window_s=1.0)
    average = meter.average_tps()
    rows = [
        ["peak (1 s window)", f"{peak:.0f} TPS"],
        ["average", f"{average:.1f} TPS"],
        ["peak/average", f"{peak / average:.1f}x"],
        ["paper's stress test", "306 peak / 105.75 avg (2.9x)"],
    ]
    assert peak / average > 2
    report("E14b peak vs average under bursty load", render_table(["metric", "value"], rows))


def run(params: dict, seed: int) -> dict:
    """Uniform sweep entry point (see repro.runner.spec)."""
    started = time.perf_counter()
    p = {**dict(EXPERIMENTS["E14"].default_params), **(params or {})}
    processing = p["processing_tps"] or None  # 0.0 means unlimited hardware
    settled_tps = drive_load(
        p["offered_tps"], processing_tps=processing,
        duration=p["duration_s"], seed=seed,
    )
    metrics = {
        "settled_tps": settled_tps,
        "settled_over_offered": settled_tps / p["offered_tps"],
    }
    return make_result("E14", p, seed, metrics, started=started)


if __name__ == "__main__":
    from conftest import bench_main

    bench_main(run)
